(* Request-serving workloads: shape grammar round-trips, golden
   percentile extraction (exact nearest-rank and the power-of-two
   histogram), SLO violation windows, open-loop arrival determinism,
   and the serving path end-to-end over real collectors. *)

module Mini = Test_support.Mini
module Shapes = Workload.Shapes
module Slo = Workload.Slo
module Request = Workload.Request
module Catalog = Workload.Catalog

let check = Alcotest.check

(* ----------------------------------------------------------------- *)
(* Shapes                                                             *)

let test_shape_grammar_roundtrip () =
  (* every registered serving workload's shape survives the grammar *)
  List.iter
    (fun (s : Request.spec) ->
      let text = Shapes.to_string s.Request.shape in
      check Alcotest.bool
        (s.Request.name ^ " shape round-trips via " ^ text)
        true
        (Shapes.of_string text = s.Request.shape))
    Catalog.serving_specs;
  (* and each grammar form parses from hand-written text *)
  List.iter
    (fun (text, shape) ->
      check Alcotest.bool (text ^ " parses") true
        (Shapes.of_string text = shape))
    [
      ("fixed:1200", Shapes.Fixed { rps = 1200.0 });
      ( "rampup:200:2500:1.5",
        Shapes.Rampup { from_rps = 200.0; to_rps = 2500.0; over_s = 1.5 } );
      ( "pausing:2000:0.25:0.25",
        Shapes.Pausing { rps = 2000.0; on_s = 0.25; off_s = 0.25 } );
      ( "shaped:0=300,1=1800,2=400",
        Shapes.Shaped { points = [ (0.0, 300.0); (1.0, 1800.0); (2.0, 400.0) ] }
      );
      ( "diurnal:400:2200:1",
        Shapes.Diurnal { base_rps = 400.0; peak_rps = 2200.0; period_s = 1.0 }
      );
      ( "flash:600:3000:0.8:0.4",
        Shapes.Flash
          { base_rps = 600.0; spike_rps = 3000.0; at_s = 0.8; for_s = 0.4 } );
    ]

let test_shape_grammar_rejects_garbage () =
  List.iter
    (fun text ->
      check Alcotest.bool (text ^ " rejected") true
        (match Shapes.of_string text with
        | (_ : Shapes.t) -> false
        | exception Failure _ -> true))
    [ ""; "nope"; "fixed:"; "fixed:abc"; "rampup:1:2"; "shaped:"; "flash:1:2:3" ]

let test_shape_rates () =
  let near what a b =
    check Alcotest.bool (Printf.sprintf "%s (%g ~ %g)" what a b) true
      (Float.abs (a -. b) < 1e-6)
  in
  near "fixed" (Shapes.rate (Shapes.Fixed { rps = 100.0 }) ~at_s:5.0) 100.0;
  let ramp = Shapes.Rampup { from_rps = 100.0; to_rps = 300.0; over_s = 2.0 } in
  near "rampup midpoint" (Shapes.rate ramp ~at_s:1.0) 200.0;
  near "rampup saturates" (Shapes.rate ramp ~at_s:10.0) 300.0;
  let pause = Shapes.Pausing { rps = 100.0; on_s = 1.0; off_s = 1.0 } in
  near "pausing on" (Shapes.rate pause ~at_s:0.5) 100.0;
  near "pausing off" (Shapes.rate pause ~at_s:1.5) 0.0;
  let flash =
    Shapes.Flash { base_rps = 100.0; spike_rps = 900.0; at_s = 1.0; for_s = 0.5 }
  in
  near "flash before" (Shapes.rate flash ~at_s:0.5) 100.0;
  near "flash during" (Shapes.rate flash ~at_s:1.2) 900.0;
  near "flash after" (Shapes.rate flash ~at_s:2.0) 100.0;
  let diurnal =
    Shapes.Diurnal { base_rps = 100.0; peak_rps = 300.0; period_s = 2.0 }
  in
  near "diurnal trough" (Shapes.rate diurnal ~at_s:0.0) 100.0;
  near "diurnal peak" (Shapes.rate diurnal ~at_s:1.0) 300.0;
  (* the thinning envelope must dominate the instantaneous rate *)
  List.iter
    (fun shape ->
      let peak = Shapes.peak_rate shape in
      for i = 0 to 40 do
        let at_s = float_of_int i /. 10.0 in
        check Alcotest.bool "peak_rate dominates" true
          (Shapes.rate shape ~at_s <= peak +. 1e-9)
      done)
    [ ramp; pause; flash; diurnal; Shapes.Fixed { rps = 100.0 } ]

let test_shape_validate () =
  List.iter
    (fun (what, shape) ->
      check Alcotest.bool (what ^ " rejected") true
        (match Shapes.validate shape with
        | () -> false
        | exception Invalid_argument _ -> true))
    [
      ("negative rate", Shapes.Fixed { rps = -1.0 });
      ( "zero ramp window",
        Shapes.Rampup { from_rps = 1.0; to_rps = 2.0; over_s = 0.0 } );
      ("empty shaped", Shapes.Shaped { points = [] });
      ( "unsorted shaped",
        Shapes.Shaped { points = [ (1.0, 10.0); (0.0, 10.0) ] } );
    ]

(* ----------------------------------------------------------------- *)
(* Golden percentile extraction                                       *)

(* 1000 latencies of 1,2,...,1000 us, fed in shuffled order. Exact
   nearest-rank percentiles are known in closed form; the power-of-two
   histogram's conservative answers are pinned to their bucket upper
   bounds. *)
let synthetic_latencies () =
  let n = 1000 in
  let lat = Array.init n (fun i -> (i + 1) * 1_000) in
  (* deterministic shuffle so order carries no information *)
  let rng = Repro_util.Rng.create 99 in
  for i = n - 1 downto 1 do
    let j = Repro_util.Rng.int rng (i + 1) in
    let tmp = lat.(i) in
    lat.(i) <- lat.(j);
    lat.(j) <- tmp
  done;
  lat

let test_percentile_golden_exact () =
  let lat = synthetic_latencies () in
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  check Alcotest.int "p50" 500_000 (Slo.percentile sorted 0.5);
  check Alcotest.int "p99" 990_000 (Slo.percentile sorted 0.99);
  check Alcotest.int "p999" 999_000 (Slo.percentile sorted 0.999);
  check Alcotest.int "p100" 1_000_000 (Slo.percentile sorted 1.0);
  check Alcotest.int "empty" 0 (Slo.percentile [||] 0.5)

let test_percentile_golden_histogram () =
  let h = Telemetry.Histogram.create () in
  Array.iter (Telemetry.Histogram.add h) (synthetic_latencies ());
  (* bucket upper bounds: 500th sample lands in [2^18, 2^19) *)
  check Alcotest.int "hist p50" 524_288 (Telemetry.Histogram.percentile_ns h 0.5);
  (* the tail buckets saturate at the recorded max *)
  check Alcotest.int "hist p99" 1_000_000
    (Telemetry.Histogram.percentile_ns h 0.99);
  check Alcotest.int "hist p999" 1_000_000
    (Telemetry.Histogram.percentile_ns h 0.999);
  (* conservative: bucketed never under-reports the exact percentile *)
  let sorted = Array.init 1000 (fun i -> (i + 1) * 1_000) in
  List.iter
    (fun p ->
      check Alcotest.bool (Printf.sprintf "hist upper-bounds exact at %g" p)
        true
        (Telemetry.Histogram.percentile_ns h p >= Slo.percentile sorted p))
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_summary_of_samples () =
  let lat = synthetic_latencies () in
  (* spread finishes uniformly over 1s of virtual time *)
  let samples = Array.mapi (fun i l -> (i * 1_000_000, l)) lat in
  let s =
    Slo.of_samples ~slo_ns:900_000 ~start_ns:0 ~end_ns:1_000_000_000 samples
  in
  check Alcotest.int "requests" 1000 s.Slo.requests;
  check Alcotest.int "p50" 500_000 s.Slo.p50_ns;
  check Alcotest.int "p99" 990_000 s.Slo.p99_ns;
  check Alcotest.int "p999" 999_000 s.Slo.p999_ns;
  check Alcotest.int "max" 1_000_000 s.Slo.max_ns;
  check Alcotest.int "violations" 100 s.Slo.violations;
  check Alcotest.bool "mean" true (Float.abs (s.Slo.mean_ns -. 500_500.0) < 1.0);
  check Alcotest.bool "throughput" true
    (Float.abs (s.Slo.throughput_rps -. 1000.0) < 1e-6);
  check Alcotest.bool "p999 over slo" true (not (Slo.meets_p999 s))

(* ----------------------------------------------------------------- *)
(* Violation windows                                                  *)

let test_violation_windows_merge () =
  let ok finish = (finish, 1_000_000) in
  let bad finish = (finish, 20_000_000) in
  let ms x = x * 1_000_000 in
  let samples =
    [|
      (* violating cluster across two adjacent 100ms windows *)
      bad (ms 50);
      bad (ms 150);
      bad (ms 160);
      ok (ms 170);
      (* clean middle *)
      ok (ms 250);
      ok (ms 350);
      (* one late violator *)
      bad (ms 450);
      ok (ms 460);
    |]
  in
  let s =
    Slo.of_samples ~slo_ns:10_000_000 ~start_ns:0 ~end_ns:(ms 1000) samples
  in
  check Alcotest.int "violations" 4 s.Slo.violations;
  (match s.Slo.windows with
  | [ w1; w2 ] ->
      check Alcotest.int "merged span start" 0 w1.Slo.from_ns;
      check Alcotest.int "merged span end" (ms 200) w1.Slo.until_ns;
      check Alcotest.int "merged span violations" 3 w1.Slo.violations;
      check Alcotest.int "merged span requests" 4 w1.Slo.requests;
      check Alcotest.int "late window start" (ms 400) w2.Slo.from_ns;
      check Alcotest.int "late window end" (ms 500) w2.Slo.until_ns;
      check Alcotest.int "late window violations" 1 w2.Slo.violations
  | ws -> Alcotest.failf "expected 2 maximal spans, got %d" (List.length ws));
  check Alcotest.int "violation_ns sums the spans" (ms 300) s.Slo.violation_ns

let test_summary_json_roundtrip () =
  let lat = synthetic_latencies () in
  let samples = Array.mapi (fun i l -> (i * 1_000_000, l)) lat in
  let s =
    Slo.of_samples ~slo_ns:900_000 ~start_ns:0 ~end_ns:1_000_000_000 samples
  in
  (match Slo.of_json (Slo.to_json s) with
  | Some s' -> check Alcotest.bool "round-trips" true (s = s')
  | None -> Alcotest.fail "summary did not parse back");
  check Alcotest.bool "garbage is None" true
    (Slo.of_json (Telemetry.Json.Str "nope") = None)

(* ----------------------------------------------------------------- *)
(* The request mutator over real collectors                           *)

let tiny_spec ?(seed = 7) () =
  (* ~100ms arrival window at 1.5k rps: ~150 requests, milliseconds of
     virtual time *)
  { (Request.scale_volume Catalog.srv_fixed 0.05) with Request.seed }

let drive_serving ?(collector = "BC") ?(heap_bytes = 6 * 1024 * 1024) spec =
  let m, c = Mini.collector ~heap_bytes collector in
  let t = Request.create spec c in
  let guard = ref 0 in
  while (not (Request.step t ~ops:256)) && !guard < 1_000_000 do
    incr guard
  done;
  check Alcotest.bool "finished" true (Request.finished t);
  (m, t)

let test_serving_runs_and_summarises () =
  let _, t = drive_serving (tiny_spec ()) in
  let s = Request.summary t in
  check Alcotest.bool "served a plausible request count" true
    (s.Slo.requests > 50 && s.Slo.requests < 500);
  check Alcotest.int "summary covers every request" (Request.requests_done t)
    s.Slo.requests;
  check Alcotest.bool "percentiles ordered" true
    (s.Slo.p50_ns <= s.Slo.p99_ns
    && s.Slo.p99_ns <= s.Slo.p999_ns
    && s.Slo.p999_ns <= s.Slo.max_ns);
  check Alcotest.bool "throughput positive" true (s.Slo.throughput_rps > 0.0);
  check Alcotest.bool "allocated" true (Request.allocated_bytes t > 0);
  check Alcotest.bool "progress complete" true (Request.progress t >= 1.0)

let test_arrival_determinism () =
  let run seed =
    let m, t = drive_serving (tiny_spec ~seed ()) in
    ( Request.requests_done t,
      Request.ops_done t,
      Vmsim.Clock.now m.Mini.clock,
      Request.summary t )
  in
  check Alcotest.bool "same seed, identical run" true (run 7 = run 7);
  let r1, o1, c1, _ = run 7 and r2, o2, c2, _ = run 8 in
  check Alcotest.bool "different seed, different schedule" true
    ((r1, o1, c1) <> (r2, o2, c2))

let test_serving_across_collectors () =
  List.iter
    (fun collector ->
      let _, t = drive_serving ~collector (tiny_spec ()) in
      check Alcotest.bool (collector ^ " served requests") true
        (Request.requests_done t > 0))
    [ "BC"; "GenMS"; "GenCopy" ]

let test_serving_telemetry_events () =
  let sink = Telemetry.Sink.create () in
  let _, c = Mini.collector ~heap_bytes:(6 * 1024 * 1024) "BC" in
  let t = Request.create ~sink (tiny_spec ()) c in
  while not (Request.step t ~ops:256) do
    ()
  done;
  let arrivals = ref 0 and dones = ref 0 in
  Telemetry.Sink.iter sink (fun e ->
      match e.Telemetry.Event.kind with
      | Telemetry.Event.Request_arrival -> incr arrivals
      | Telemetry.Event.Request_done -> incr dones
      | _ -> ());
  check Alcotest.int "one arrival per request" (Request.requests_done t)
    !arrivals;
  check Alcotest.int "one completion per request" (Request.requests_done t)
    !dones

let test_scale_volume_stretches_window () =
  let base = Catalog.srv_fixed in
  let double = Request.scale_volume base 2.0 in
  check Alcotest.int "duration doubled" (2 * base.Request.duration_ns)
    double.Request.duration_ns;
  check Alcotest.int "live set untouched" base.Request.cache_bytes
    double.Request.cache_bytes

let test_catalog_driver_serving () =
  let _, c = Mini.collector ~heap_bytes:(6 * 1024 * 1024) "BC" in
  let d =
    Catalog.driver (Catalog.Serving_spec (tiny_spec ())) c
  in
  while not (d.Workload.Driver.step ~ops:256) do
    ()
  done;
  match d.Workload.Driver.serving () with
  | Some s -> check Alcotest.bool "driver surfaces the summary" true
      (s.Slo.requests > 0)
  | None -> Alcotest.fail "serving driver returned no summary"

let () =
  Alcotest.run "serving"
    [
      ( "shapes",
        [
          Alcotest.test_case "grammar roundtrip" `Quick
            test_shape_grammar_roundtrip;
          Alcotest.test_case "grammar rejects" `Quick
            test_shape_grammar_rejects_garbage;
          Alcotest.test_case "rates" `Quick test_shape_rates;
          Alcotest.test_case "validate" `Quick test_shape_validate;
        ] );
      ( "percentiles",
        [
          Alcotest.test_case "golden exact" `Quick test_percentile_golden_exact;
          Alcotest.test_case "golden histogram" `Quick
            test_percentile_golden_histogram;
          Alcotest.test_case "summary" `Quick test_summary_of_samples;
        ] );
      ( "slo windows",
        [
          Alcotest.test_case "merge" `Quick test_violation_windows_merge;
          Alcotest.test_case "json roundtrip" `Quick
            test_summary_json_roundtrip;
        ] );
      ( "requests",
        [
          Alcotest.test_case "runs + summarises" `Quick
            test_serving_runs_and_summarises;
          Alcotest.test_case "arrival determinism" `Quick
            test_arrival_determinism;
          Alcotest.test_case "across collectors" `Quick
            test_serving_across_collectors;
          Alcotest.test_case "telemetry events" `Quick
            test_serving_telemetry_events;
          Alcotest.test_case "scale_volume" `Quick
            test_scale_volume_stretches_window;
          Alcotest.test_case "catalog driver" `Quick
            test_catalog_driver_serving;
        ] );
    ]

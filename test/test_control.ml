(* The online memory controller: degradation ladder, policy actuation,
   and the determinism contract — same seed + plan means a byte-identical
   decision trace, and a run with no controller (or an inert one) is
   byte-identical to seed. The committed golden matrices are the other
   half of that contract; test_identity pins those. *)

module Controller = Control.Controller
module Registry = Control.Registry
module FP = Faults.Fault_plan
module Metrics = Harness.Metrics
module Plan = Harness.Run.Plan
module Json = Telemetry.Json

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let sample ?(mf = 0) ?(notices = 0) ?(res = 500) ?(free = 500) () =
  {
    Controller.window_ns = 1_000_000;
    major_faults = mf;
    minor_faults = 0;
    evictions = 0;
    notices;
    discards = 0;
    resident_pages = res;
    free_frames = free;
    heap_pages = 768;
    allocated_bytes = 0;
    p99_pause_ms = 0.0;
    failsafes = 0;
  }

(* ----------------------------------------------------------------- *)
(* Degradation ladder                                                 *)

let test_fsm_ladder () =
  let fsm = Controller.Fsm.create ~frames:1000 () in
  let step s = Controller.Fsm.step fsm s in
  check Alcotest.bool "quiet stays Normal" true
    (step (sample ()) = (Controller.Normal, false));
  check Alcotest.bool "one fault escalates to Pressure" true
    (step (sample ~mf:1 ()) = (Controller.Pressure, false));
  check Alcotest.bool "a heavy window jumps to Emergency" true
    (step (sample ~mf:8 ()) = (Controller.Emergency, false));
  (* hysteresis: the dwell holds the state through short quiet spells *)
  check Alcotest.bool "1st quiet window holds" true
    (fst (step (sample ())) = Controller.Emergency);
  check Alcotest.bool "2nd quiet window holds" true
    (fst (step (sample ())) = Controller.Emergency);
  check Alcotest.bool "3rd quiet window steps down one level" true
    (fst (step (sample ())) = Controller.Pressure);
  check Alcotest.bool "4th quiet window reaches Normal" true
    (fst (step (sample ())) = Controller.Normal)

let test_fsm_pressure_signals () =
  (* each escalation signal alone reaches Pressure *)
  let reaches s =
    let fsm = Controller.Fsm.create ~frames:1000 () in
    fst (Controller.Fsm.step fsm s) = Controller.Pressure
  in
  check Alcotest.bool "major fault" true (reaches (sample ~mf:1 ()));
  check Alcotest.bool "notice burst" true (reaches (sample ~notices:4 ()));
  check Alcotest.bool "low free frames" true (reaches (sample ~free:100 ()));
  check Alcotest.bool "ample free frames is quiet" false
    (reaches (sample ~free:500 ()))

let test_watchdog () =
  let fsm = Controller.Fsm.create ~frames:1000 () in
  let step s = Controller.Fsm.step fsm s in
  ignore (step (sample ~mf:8 ()));
  (* rising faults + flat residency: three windows force the fail-safe *)
  check Alcotest.bool "rising 1" true
    (step (sample ~mf:9 ()) = (Controller.Emergency, false));
  check Alcotest.bool "rising 2" true
    (step (sample ~mf:10 ()) = (Controller.Emergency, false));
  check Alcotest.bool "rising 3 forces Failsafe" true
    (step (sample ~mf:11 ()) = (Controller.Failsafe, true));
  (* recovery leaves through the quiet path, one level per window *)
  ignore (step (sample ()));
  ignore (step (sample ()));
  check Alcotest.bool "quiet dwell leaves Failsafe" true
    (fst (step (sample ())) = Controller.Pressure)

let test_watchdog_ignores_plateau () =
  let fsm = Controller.Fsm.create ~frames:1000 () in
  let step s = Controller.Fsm.step fsm s in
  ignore (step (sample ~mf:8 ()));
  (* a steady fault plateau is Emergency's job, not the watchdog's *)
  for _ = 1 to 6 do
    let st, forced = step (sample ~mf:9 ()) in
    check Alcotest.bool "plateau never forces" false forced;
    check Alcotest.bool "plateau stays Emergency" true
      (st = Controller.Emergency)
  done

(* ----------------------------------------------------------------- *)
(* Registry & policies                                                *)

let cfg = { Controller.heap_pages = 768; frames = 960; window_ns = 1_000_000 }

let test_registry () =
  check
    Alcotest.(list string)
    "registered policies"
    [ "static"; "static-tight"; "threshold"; "pi" ]
    (Registry.names ());
  check Alcotest.bool "find_opt misses politely" true
    (Registry.find_opt "nope" = None);
  (match Registry.find "nope" with
  | exception Failure m ->
      check Alcotest.bool "failure names the known policies" true
        (contains m "threshold")
  | _ -> Alcotest.fail "unknown policy must be refused");
  List.iter
    (fun name ->
      let c = Registry.instantiate ~name cfg in
      check Alcotest.string ("instantiate " ^ name) name
        (Controller.policy c))
    (Registry.names ())

let test_threshold_actuation () =
  let c = Registry.instantiate ~name:"threshold" cfg in
  let quiet = Controller.decide c (sample ()) in
  check Alcotest.bool "quiet window is inert" true
    (quiet.Controller.state = Controller.Normal
    && quiet.Controller.act = Controller.inert_actuation);
  let pressured = Controller.decide c (sample ~mf:1 ()) in
  check Alcotest.bool "pressure caps at 3/4 of frames" true
    (pressured.Controller.state = Controller.Pressure
    && pressured.Controller.act.Controller.target = Controller.Cap 720);
  (* dwell out, then the cap is cleared exactly once *)
  ignore (Controller.decide c (sample ()));
  ignore (Controller.decide c (sample ()));
  let back = Controller.decide c (sample ()) in
  check Alcotest.bool "return to Normal clears the cap" true
    (back.Controller.state = Controller.Normal
    && back.Controller.act.Controller.target = Controller.Clear);
  let after = Controller.decide c (sample ()) in
  check Alcotest.bool "subsequent quiet windows keep" true
    (after.Controller.act.Controller.target = Controller.Keep)

let test_pi_trims_deeper () =
  let c = Registry.instantiate ~name:"pi" cfg in
  let cap_of d =
    match d.Controller.act.Controller.target with
    | Controller.Cap n -> n
    | _ -> Alcotest.fail "expected a cap"
  in
  let first = cap_of (Controller.decide c (sample ~mf:4 ())) in
  let second = cap_of (Controller.decide c (sample ~mf:4 ())) in
  check Alcotest.bool "base cap is 3/4 of frames or below" true (first <= 720);
  check Alcotest.bool "sustained faults trim deeper" true (second < first);
  check Alcotest.bool "trim bottoms out at 5/8 of frames" true (second >= 600)

let test_summary_counters () =
  let c = Registry.instantiate ~name:"threshold" cfg in
  ignore (Controller.decide c (sample ~mf:1 ()));
  ignore (Controller.decide c (sample ()));
  let s = Controller.summary c in
  check Alcotest.int "decisions counted" 2 s.Controller.decisions;
  check Alcotest.bool "peak recorded" true
    (s.Controller.peak_state = Controller.Pressure);
  check Alcotest.string "digest matches the trace" s.Controller.trace_digest
    (Digest.to_hex (Digest.string (Controller.trace_text c)))

(* ----------------------------------------------------------------- *)
(* End-to-end determinism                                             *)

let mini_spec =
  {
    (Workload.Benchmarks.pseudojbb) with
    Workload.Spec.total_alloc_bytes = 2_000_000;
    immortal_bytes = 200_000;
    window_bytes = 100_000;
  }

let storm =
  { FP.none with FP.drop_eviction = 0.4; drop_resident = 0.2; delay_notice = 0.1 }

let plan ?controller () =
  let heap_bytes = 1_500_000 in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 256 in
  let pressure =
    Workload.Pressure.Steady { after_progress = 0.2; pin_pages = frames - 150 }
  in
  let p =
    Plan.make ~collector:"BC" ~spec:mini_spec ~heap_bytes
    |> Plan.with_frames frames
    |> Plan.with_pressure pressure
    |> Plan.with_faults ~seed:7 storm
  in
  match controller with
  | None -> p
  | Some name -> Plan.with_controller ~window_ns:1_000_000 name p

let completed outcome =
  match outcome with
  | Metrics.Completed m -> m
  | _ -> Alcotest.fail "plan should complete"

let test_canonical_controller_tag () =
  check Alcotest.bool "controller-off canonical carries no tag" true
    (not (contains (Plan.canonical (plan ())) "controller="));
  check Alcotest.bool "controller lands in the canonical" true
    (contains
       (Plan.canonical (plan ~controller:"threshold" ()))
       "controller=threshold@1000000");
  check Alcotest.bool "unknown policy refused at plan construction" true
    (match Plan.with_controller "nope" (plan ()) with
    | exception Failure _ -> true
    | _ -> false)

let test_decision_trace_deterministic () =
  let m1 = completed (Harness.Run.exec (plan ~controller:"threshold" ())) in
  let m2 = completed (Harness.Run.exec (plan ~controller:"threshold" ())) in
  let s1 = Option.get m1.Metrics.control
  and s2 = Option.get m2.Metrics.control in
  check Alcotest.string "same plan, same decision-trace digest"
    s1.Controller.trace_digest s2.Controller.trace_digest;
  check Alcotest.int "same decision count" s1.Controller.decisions
    s2.Controller.decisions;
  check Alcotest.bool "the controller actually decided" true
    (s1.Controller.decisions > 0);
  check Alcotest.string "byte-identical metrics JSON"
    (Json.to_string (Metrics.to_json m1))
    (Json.to_string (Metrics.to_json m2))

(* Strip the conditional "control" member so an inert controller's
   metrics can be compared byte-for-byte against a controller-off run. *)
let strip_control = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "control") fields)
  | j -> j

let test_off_and_inert_identical () =
  let off = completed (Harness.Run.exec (plan ())) in
  let inert = completed (Harness.Run.exec (plan ~controller:"static" ())) in
  check Alcotest.bool "controller-off metrics carry no control key" true
    (off.Metrics.control = None);
  check Alcotest.bool "inert controller reports a summary" true
    (inert.Metrics.control <> None);
  check Alcotest.string
    "inert controller perturbs nothing (metrics modulo the control key)"
    (Json.to_string (Metrics.to_json off))
    (Json.to_string (strip_control (Metrics.to_json inert)))

let () =
  Alcotest.run "control"
    [
      ( "fsm",
        [
          Alcotest.test_case "ladder" `Quick test_fsm_ladder;
          Alcotest.test_case "pressure signals" `Quick
            test_fsm_pressure_signals;
          Alcotest.test_case "watchdog" `Quick test_watchdog;
          Alcotest.test_case "watchdog ignores plateau" `Quick
            test_watchdog_ignores_plateau;
        ] );
      ( "policies",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "threshold actuation" `Quick
            test_threshold_actuation;
          Alcotest.test_case "pi trims deeper" `Quick test_pi_trims_deeper;
          Alcotest.test_case "summary counters" `Quick test_summary_counters;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "canonical tag" `Quick
            test_canonical_controller_tag;
          Alcotest.test_case "decision trace" `Quick
            test_decision_trace_deterministic;
          Alcotest.test_case "off and inert identical" `Quick
            test_off_and_inert_identical;
        ] );
    ]

module Vec = Repro_util.Vec
module Bitset = Repro_util.Bitset
module Rng = Repro_util.Rng
module Summary = Repro_util.Summary

let check = Alcotest.check

(* ----------------------------------------------------------------- *)
(* Vec                                                                *)

let test_vec_basic () =
  let v = Vec.create () in
  check Alcotest.bool "fresh empty" true (Vec.is_empty v);
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  check Alcotest.int "length" 3 (Vec.length v);
  check Alcotest.int "get 0" 1 (Vec.get v 0);
  check Alcotest.int "get 2" 3 (Vec.get v 2);
  Vec.set v 1 42;
  check Alcotest.int "set/get" 42 (Vec.get v 1);
  check Alcotest.int "top" 3 (Vec.top v);
  check Alcotest.int "pop" 3 (Vec.pop v);
  check Alcotest.int "length after pop" 2 (Vec.length v)

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  check Alcotest.int "grown length" 1000 (Vec.length v);
  for i = 0 to 999 do
    assert (Vec.get v i = i)
  done

let test_vec_swap_remove () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  let removed = Vec.swap_remove v 1 in
  check Alcotest.int "removed" 20 removed;
  check Alcotest.int "length" 3 (Vec.length v);
  check Alcotest.int "last moved in" 40 (Vec.get v 1)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 1 out of bounds (len 1)")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () ->
      ignore (Vec.pop v);
      ignore (Vec.pop v))

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  let sum = Vec.fold_left ( + ) 0 v in
  check Alcotest.int "fold" 6 sum;
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check Alcotest.int "iteri count" 3 (List.length !acc);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 2) v);
  check Alcotest.bool "not exists" false (Vec.exists (fun x -> x = 9) v);
  check (Alcotest.list Alcotest.int) "to_list" [ 1; 2; 3 ] (Vec.to_list v)

let test_vec_sort () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort compare v;
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

let test_vec_clear () =
  let v = Vec.of_list [ 1; 2 ] in
  Vec.clear v;
  check Alcotest.bool "cleared" true (Vec.is_empty v);
  Vec.push v 9;
  check Alcotest.int "reusable" 9 (Vec.get v 0)

(* ----------------------------------------------------------------- *)
(* Bitset                                                             *)

let test_bitset_basic () =
  let b = Bitset.create () in
  check Alcotest.bool "fresh" false (Bitset.mem b 5);
  Bitset.set b 5;
  check Alcotest.bool "set" true (Bitset.mem b 5);
  check Alcotest.int "cardinal" 1 (Bitset.cardinal b);
  Bitset.clear b 5;
  check Alcotest.bool "cleared" false (Bitset.mem b 5);
  check Alcotest.int "cardinal 0" 0 (Bitset.cardinal b)

let test_bitset_growth () =
  let b = Bitset.create () in
  Bitset.set b 100_000;
  check Alcotest.bool "big index" true (Bitset.mem b 100_000);
  check Alcotest.bool "mem beyond capacity" false (Bitset.mem b 10_000_000)

let test_bitset_iter () =
  let b = Bitset.create () in
  List.iter (Bitset.set b) [ 3; 77; 500 ];
  let collected = ref [] in
  Bitset.iter (fun i -> collected := i :: !collected) b;
  check (Alcotest.list Alcotest.int) "iter asc" [ 3; 77; 500 ]
    (List.rev !collected)

let test_bitset_first_set_from () =
  let b = Bitset.create () in
  List.iter (Bitset.set b) [ 10; 64; 100 ];
  check (Alcotest.option Alcotest.int) "from 0" (Some 10)
    (Bitset.first_set_from b 0);
  check (Alcotest.option Alcotest.int) "from 11" (Some 64)
    (Bitset.first_set_from b 11);
  check (Alcotest.option Alcotest.int) "from 101" None
    (Bitset.first_set_from b 101)

let test_bitset_word_peers () =
  let b = Bitset.create () in
  (* 0..62 share a 63-bit word *)
  List.iter (Bitset.set b) [ 1; 5; 62; 63 ];
  let peers = Bitset.word_peers b 1 in
  check (Alcotest.list Alcotest.int) "peers of word 0" [ 1; 5; 62 ] peers;
  check (Alcotest.list Alcotest.int) "peers of word 1" [ 63 ]
    (Bitset.word_peers b 63)

let test_bitset_reset () =
  let b = Bitset.create () in
  List.iter (Bitset.set b) [ 1; 2; 3 ];
  Bitset.reset b;
  check Alcotest.int "reset" 0 (Bitset.cardinal b)

(* The set is chunked: giant indices must cost memory proportional to
   the chunks actually written, and clears on never-written regions must
   stay no-ops rather than materialising anything. *)
let test_bitset_giant_sparse () =
  let b = Bitset.create () in
  let giant = 1 lsl 30 in
  Bitset.set b giant;
  Bitset.set b (giant + 1);
  Bitset.set b 2;
  check Alcotest.bool "giant member" true (Bitset.mem b giant);
  check Alcotest.int "cardinal across the gap" 3 (Bitset.cardinal b);
  (* clear in the untouched middle: must not allocate a chunk or raise *)
  Bitset.clear b (giant / 2);
  check Alcotest.int "no-op clear" 3 (Bitset.cardinal b);
  let collected = ref [] in
  Bitset.iter (fun i -> collected := i :: !collected) b;
  check (Alcotest.list Alcotest.int) "iter ascending across the gap"
    [ 2; giant; giant + 1 ]
    (List.rev !collected);
  check (Alcotest.option Alcotest.int) "first_set_from jumps the gap"
    (Some giant)
    (Bitset.first_set_from b 3);
  Bitset.clear b giant;
  check (Alcotest.option Alcotest.int) "next after clear" (Some (giant + 1))
    (Bitset.first_set_from b 3)

(* ----------------------------------------------------------------- *)
(* Rng                                                                *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    assert (x >= 0 && x < 17);
    let f = Rng.float r 2.5 in
    assert (f >= 0.0 && f < 2.5)
  done

let test_rng_split () =
  let r = Rng.create 9 in
  let s = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.int r 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int s 1_000_000) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let test_rng_geometric () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.geometric r 0.5
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* mean of geometric(0.5) failures = 1.0 *)
  check Alcotest.bool "geometric mean near 1" true (mean > 0.8 && mean < 1.2)

(* ----------------------------------------------------------------- *)
(* Summary                                                            *)

let test_summary () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Summary.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "mean empty" 0.0 (Summary.mean []);
  check (Alcotest.float 1e-6) "geomean" 2.0 (Summary.geomean [ 1.0; 2.0; 4.0 ]);
  check (Alcotest.float 1e-9) "max" 4.0 (Summary.max [ 1.0; 4.0; 2.0 ]);
  check (Alcotest.float 1e-9) "sum" 7.0 (Summary.sum [ 3.0; 4.0 ]);
  check (Alcotest.float 1e-9) "p50" 2.0
    (Summary.percentile 0.5 [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "p100" 3.0
    (Summary.percentile 1.0 [ 3.0; 1.0; 2.0 ])

(* ----------------------------------------------------------------- *)
(* Properties                                                         *)

let prop_vec_model =
  QCheck.Test.make ~name:"vec behaves like a list"
    ~count:200
    QCheck.(small_list small_int)
    (fun xs ->
      let v = Vec.of_list xs in
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && Array.to_list (Vec.to_array v) = xs)

let prop_vec_push_pop =
  QCheck.Test.make ~name:"vec push then pop returns pushed"
    ~count:200
    QCheck.(pair (small_list small_int) small_int)
    (fun (xs, x) ->
      let v = Vec.of_list xs in
      Vec.push v x;
      Vec.pop v = x && Vec.to_list v = xs)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a reference set"
    ~count:200
    QCheck.(small_list (pair bool (int_bound 500)))
    (fun ops ->
      let b = Bitset.create () in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.set b i;
            Hashtbl.replace reference i ()
          end
          else begin
            Bitset.clear b i;
            Hashtbl.remove reference i
          end)
        ops;
      Hashtbl.length reference = Bitset.cardinal b
      && List.for_all
           (fun (_, i) -> Bitset.mem b i = Hashtbl.mem reference i)
           ops)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng ints within bounds" ~count:200
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "growth" `Quick test_vec_growth;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
          Alcotest.test_case "sort" `Quick test_vec_sort;
          Alcotest.test_case "clear" `Quick test_vec_clear;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "growth" `Quick test_bitset_growth;
          Alcotest.test_case "iter" `Quick test_bitset_iter;
          Alcotest.test_case "first_set_from" `Quick test_bitset_first_set_from;
          Alcotest.test_case "word_peers" `Quick test_bitset_word_peers;
          Alcotest.test_case "reset" `Quick test_bitset_reset;
          Alcotest.test_case "giant sparse" `Quick test_bitset_giant_sparse;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "geometric" `Quick test_rng_geometric;
        ] );
      ("summary", [ Alcotest.test_case "stats" `Quick test_summary ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_vec_model; prop_vec_push_pop; prop_bitset_model; prop_rng_int_bounds ] );
    ]

module OT = Heapsim.Object_table
module PM = Heapsim.Page_map
module AS = Heapsim.Address_space
module Heap = Heapsim.Heap

let check = Alcotest.check

(* ----------------------------------------------------------------- *)
(* Object_table                                                       *)

let test_alloc_free_recycle () =
  let t = OT.create () in
  let a = OT.alloc t ~size:16 ~nrefs:2 ~kind:`Scalar in
  let b = OT.alloc t ~size:32 ~nrefs:0 ~kind:`Array in
  check Alcotest.bool "distinct ids" true (a <> b);
  check Alcotest.int "live count" 2 (OT.live_count t);
  check Alcotest.int "live bytes" 48 (OT.live_bytes t);
  check Alcotest.int "size" 16 (OT.size t a);
  check Alcotest.bool "kind scalar" true (OT.kind t a = `Scalar);
  check Alcotest.bool "kind array" true (OT.kind t b = `Array);
  OT.free t a;
  check Alcotest.int "live after free" 1 (OT.live_count t);
  check Alcotest.bool "freed not live" false (OT.is_live t a);
  let c = OT.alloc t ~size:8 ~nrefs:1 ~kind:`Scalar in
  check Alcotest.int "id recycled" a c;
  check Alcotest.bool "recycled live" true (OT.is_live t c);
  (* recycled object state is fresh *)
  check Alcotest.int "fresh addr" (-1) (OT.addr t c);
  check Alcotest.int "fresh scratch" (-1) (OT.scratch t c);
  check Alcotest.bool "fresh unmarked" false (OT.marked t c);
  check Alcotest.bool "fresh ref null" true
    (Heapsim.Obj_id.is_null (OT.get_ref t c 0))

let test_dead_access_rejected () =
  let t = OT.create () in
  let a = OT.alloc t ~size:8 ~nrefs:0 ~kind:`Scalar in
  OT.free t a;
  Alcotest.check_raises "dead access"
    (Invalid_argument (Printf.sprintf "Object_table: dead or invalid object #%d" a))
    (fun () -> ignore (OT.size t a))

let test_refs () =
  let t = OT.create () in
  let a = OT.alloc t ~size:8 ~nrefs:3 ~kind:`Scalar in
  let b = OT.alloc t ~size:8 ~nrefs:0 ~kind:`Scalar in
  OT.set_ref t a 1 b;
  check Alcotest.int "get_ref" b (OT.get_ref t a 1);
  let seen = ref [] in
  OT.iter_refs t a (fun field target -> seen := (field, target) :: !seen);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "iter skips nulls" [ (1, b) ] !seen;
  check Alcotest.int "nrefs" 3 (OT.nrefs t a)

let test_flags () =
  let t = OT.create () in
  let a = OT.alloc t ~size:8 ~nrefs:0 ~kind:`Scalar in
  OT.set_marked t a true;
  OT.set_bookmarked t a true;
  check Alcotest.bool "marked" true (OT.marked t a);
  check Alcotest.bool "bookmarked" true (OT.bookmarked t a);
  OT.set_marked t a false;
  check Alcotest.bool "unmarked" false (OT.marked t a);
  check Alcotest.bool "bookmark independent" true (OT.bookmarked t a);
  OT.set_space t a 3;
  OT.set_scratch t a 42;
  check Alcotest.int "space" 3 (OT.space t a);
  check Alcotest.int "scratch" 42 (OT.scratch t a)

let test_growth () =
  let t = OT.create () in
  let ids = List.init 5000 (fun i -> OT.alloc t ~size:8 ~nrefs:0
    ~kind:(if i mod 2 = 0 then `Scalar else `Array)) in
  check Alcotest.int "live" 5000 (OT.live_count t);
  List.iteri (fun i id -> assert (OT.kind t id = if i mod 2 = 0 then `Scalar else `Array)) ids

(* ----------------------------------------------------------------- *)
(* Address_space and Page_map                                         *)

let test_address_space () =
  let a = AS.create ~first_page:10 () in
  let r1 = AS.reserve a ~npages:3 in
  let r2 = AS.reserve a ~npages:2 in
  check Alcotest.int "first" 10 r1;
  check Alcotest.int "monotone" 13 r2;
  let r3 = AS.reserve_aligned a ~npages:4 ~align:4 in
  check Alcotest.int "aligned" 0 (r3 mod 4);
  check Alcotest.bool "no overlap" true (r3 >= 15)

let test_page_map () =
  let m = PM.create () in
  ignore (PM.add m ~page:5 1 : int);
  ignore (PM.add m ~page:5 2 : int);
  ignore (PM.add m ~page:6 1 : int);
  check Alcotest.int "count" 2 (PM.count_on m 5);
  PM.remove m ~page:5 1;
  check Alcotest.int "after remove" 1 (PM.count_on m 5);
  check (Alcotest.list Alcotest.int) "snapshot" [ 2 ]
    (Array.to_list (PM.objects_on m 5));
  check Alcotest.int "other page kept" 1 (PM.count_on m 6);
  check Alcotest.int "empty page" 0 (PM.count_on m 99);
  Alcotest.check_raises "remove missing"
    (Invalid_argument "Page_map.remove: object #9 not on page 5") (fun () ->
      PM.remove m ~page:5 9)

let test_page_map_slots () =
  let m = PM.create () in
  check Alcotest.int "first slot" 0 (PM.add m ~page:3 11);
  check Alcotest.int "second slot" 1 (PM.add m ~page:3 22);
  check Alcotest.int "third slot" 2 (PM.add m ~page:3 33);
  (* O(1) removal at a slot hint swap-fills from the tail and reports
     the relocation *)
  let moved = ref [] in
  PM.remove m ~page:3 ~slot:0
    ~moved:(fun id s -> moved := (id, s) :: !moved)
    11;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "tail swap-filled the hole"
    [ (33, 0) ]
    !moved;
  (* a stale hint falls back to the scan and still removes the right id;
     removing the bucket's last element relocates nothing *)
  moved := [];
  PM.remove m ~page:3 ~slot:7
    ~moved:(fun id s -> moved := (id, s) :: !moved)
    22;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "no relocation for tail removal" [] !moved;
  check (Alcotest.list Alcotest.int) "survivor" [ 33 ]
    (Array.to_list (PM.objects_on m 3))

(* ----------------------------------------------------------------- *)
(* Heap                                                               *)

let fixture () =
  let m = Test_support.Mini.machine () in
  m

let test_place_displace () =
  let m = fixture () in
  let objects = Heap.objects m.Test_support.Mini.heap in
  let heap = m.Test_support.Mini.heap in
  let id = OT.alloc objects ~size:100 ~nrefs:0 ~kind:`Scalar in
  let first = AS.reserve (Heap.address_space heap) ~npages:1 in
  Vmsim.Vmm.map_range m.Test_support.Mini.vmm m.Test_support.Mini.proc
    ~first_page:first ~npages:1;
  Heap.place heap id ~addr:(Vmsim.Page.addr_of first);
  check Alcotest.int "on page" 1
    (PM.count_on (Heap.page_map heap) first);
  check Alcotest.int "first page" first (Heap.first_page heap id);
  Heap.displace heap id;
  check Alcotest.int "displaced" 0 (PM.count_on (Heap.page_map heap) first);
  check Alcotest.int "addr reset" (-1) (OT.addr objects id)

let test_spanning_object () =
  let m = fixture () in
  let heap = m.Test_support.Mini.heap in
  let objects = Heap.objects heap in
  let first = AS.reserve (Heap.address_space heap) ~npages:2 in
  Vmsim.Vmm.map_range m.Test_support.Mini.vmm m.Test_support.Mini.proc
    ~first_page:first ~npages:2;
  (* place so the object straddles the page boundary *)
  let id = OT.alloc objects ~size:200 ~nrefs:0 ~kind:`Scalar in
  Heap.place heap id ~addr:(Vmsim.Page.addr_of first + Vmsim.Page.size - 100);
  check Alcotest.int "registered on both pages" 2
    (PM.count_on (Heap.page_map heap) first
    + PM.count_on (Heap.page_map heap) (first + 1));
  let pages = ref [] in
  Heap.iter_pages heap id (fun p -> pages := p :: !pages);
  check (Alcotest.list Alcotest.int) "iter_pages" [ first + 1; first ] !pages;
  Heap.touch_object heap id;
  check Alcotest.bool "both pages resident" true
    (Vmsim.Vmm.is_resident m.Test_support.Mini.vmm first
    && Vmsim.Vmm.is_resident m.Test_support.Mini.vmm (first + 1))

(* Invariant behind O(1) Page_map removal: every placed object's stored
   [page_slot] names its position in its first page's bucket. *)
let page_slot_invariant heap page =
  let objects = Heap.objects heap in
  Array.iteri
    (fun slot id ->
      if Heap.first_page heap id = page then
        check Alcotest.int
          (Printf.sprintf "back-index of #%d" id)
          slot (OT.page_slot objects id))
    (PM.objects_on (Heap.page_map heap) page)

let test_page_slot_fixup () =
  let m = fixture () in
  let heap = m.Test_support.Mini.heap in
  let objects = Heap.objects heap in
  let first = AS.reserve (Heap.address_space heap) ~npages:1 in
  Vmsim.Vmm.map_range m.Test_support.Mini.vmm m.Test_support.Mini.proc
    ~first_page:first ~npages:1;
  let base = Vmsim.Page.addr_of first in
  let ids =
    List.init 8 (fun i ->
        let id = OT.alloc objects ~size:64 ~nrefs:0 ~kind:`Scalar in
        Heap.place heap id ~addr:(base + (i * 64));
        id)
  in
  page_slot_invariant heap first;
  (* middle, head and tail removals: each swap-fills from the bucket's
     tail and must fix the relocated object's stored slot *)
  List.iter
    (fun idx ->
      let id = List.nth ids idx in
      Heap.displace heap id;
      check Alcotest.int "displaced slot reset" (-1) (OT.page_slot objects id);
      page_slot_invariant heap first)
    [ 3; 0; 7 ];
  check Alcotest.int "survivors" 5 (PM.count_on (Heap.page_map heap) first);
  (* replacing objects keeps the invariant through slot reuse *)
  let id = OT.alloc objects ~size:64 ~nrefs:0 ~kind:`Scalar in
  Heap.place heap id ~addr:(base + (3 * 64));
  page_slot_invariant heap first

let test_page_slot_spanning () =
  let m = fixture () in
  let heap = m.Test_support.Mini.heap in
  let objects = Heap.objects heap in
  let first = AS.reserve (Heap.address_space heap) ~npages:2 in
  Vmsim.Vmm.map_range m.Test_support.Mini.vmm m.Test_support.Mini.proc
    ~first_page:first ~npages:2;
  let base = Vmsim.Page.addr_of first in
  (* a spanning object is slot-tracked only on its first page; its tail
     page and neighbours there still resolve by scan *)
  let small = OT.alloc objects ~size:32 ~nrefs:0 ~kind:`Scalar in
  Heap.place heap small ~addr:(base + Vmsim.Page.size);
  let span = OT.alloc objects ~size:200 ~nrefs:0 ~kind:`Scalar in
  Heap.place heap span ~addr:(base + Vmsim.Page.size - 100);
  page_slot_invariant heap first;
  page_slot_invariant heap (first + 1);
  Heap.displace heap span;
  check Alcotest.int "span gone from head page" 0
    (PM.count_on (Heap.page_map heap) first);
  check (Alcotest.list Alcotest.int) "tail page keeps neighbour" [ small ]
    (Array.to_list (PM.objects_on (Heap.page_map heap) (first + 1)));
  page_slot_invariant heap (first + 1)

let test_write_barrier_hook () =
  let m = fixture () in
  let heap = m.Test_support.Mini.heap in
  let objects = Heap.objects heap in
  let first = AS.reserve (Heap.address_space heap) ~npages:1 in
  Vmsim.Vmm.map_range m.Test_support.Mini.vmm m.Test_support.Mini.proc
    ~first_page:first ~npages:1;
  let a = OT.alloc objects ~size:16 ~nrefs:1 ~kind:`Scalar in
  let b = OT.alloc objects ~size:16 ~nrefs:0 ~kind:`Scalar in
  Heap.place heap a ~addr:(Vmsim.Page.addr_of first);
  Heap.place heap b ~addr:(Vmsim.Page.addr_of first + 16);
  let events = ref [] in
  Heap.set_write_barrier heap (fun ~src ~field ~old_target ~target ->
      events := (src, field, old_target, target) :: !events);
  Heap.write_ref heap a 0 b;
  check Alcotest.int "barrier fired once" 1 (List.length !events);
  (match !events with
  | [ (src, field, old_target, target) ] ->
      check Alcotest.int "src" a src;
      check Alcotest.int "field" 0 field;
      check Alcotest.bool "old null" true (Heapsim.Obj_id.is_null old_target);
      check Alcotest.int "target" b target
  | _ -> Alcotest.fail "expected one event");
  check Alcotest.int "stored" b (Heap.read_ref heap a 0)

let test_roots () =
  let m = fixture () in
  let heap = m.Test_support.Mini.heap in
  Heap.set_roots heap (fun f -> f 3; f 7);
  let seen = ref [] in
  Heap.iter_roots heap (fun id -> seen := id :: !seen);
  check (Alcotest.list Alcotest.int) "roots" [ 7; 3 ] !seen

let prop_object_table_alloc_free =
  QCheck.Test.make ~name:"object table alloc/free conserves live stats"
    ~count:100
    QCheck.(small_list (int_range 8 512))
    (fun sizes ->
      let t = OT.create () in
      let ids = List.map (fun size -> (OT.alloc t ~size ~nrefs:1 ~kind:`Scalar, size)) sizes in
      let expect_bytes = List.fold_left (fun acc (_, s) -> acc + s) 0 ids in
      let ok1 = OT.live_bytes t = expect_bytes && OT.live_count t = List.length ids in
      List.iter (fun (id, _) -> OT.free t id) ids;
      ok1 && OT.live_count t = 0 && OT.live_bytes t = 0)

let () =
  Alcotest.run "heapsim"
    [
      ( "object_table",
        [
          Alcotest.test_case "alloc/free/recycle" `Quick test_alloc_free_recycle;
          Alcotest.test_case "dead access" `Quick test_dead_access_rejected;
          Alcotest.test_case "refs" `Quick test_refs;
          Alcotest.test_case "flags" `Quick test_flags;
          Alcotest.test_case "growth" `Quick test_growth;
        ] );
      ( "layout",
        [
          Alcotest.test_case "address space" `Quick test_address_space;
          Alcotest.test_case "page map" `Quick test_page_map;
          Alcotest.test_case "page map slots" `Quick test_page_map_slots;
          Alcotest.test_case "place/displace" `Quick test_place_displace;
          Alcotest.test_case "spanning object" `Quick test_spanning_object;
          Alcotest.test_case "page slot fixup" `Quick test_page_slot_fixup;
          Alcotest.test_case "page slot spanning" `Quick
            test_page_slot_spanning;
        ] );
      ( "mutator",
        [
          Alcotest.test_case "write barrier" `Quick test_write_barrier_hook;
          Alcotest.test_case "roots" `Quick test_roots;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_object_table_alloc_free ] );
    ]

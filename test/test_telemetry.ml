(* Telemetry subsystem: ring-buffer retention, Chrome trace JSON golden,
   the JSON parser, snapshots, the typed registry, and the zero-overhead
   contract — a traced-off run is bit-identical to the seed behaviour,
   and attaching a sink changes no virtual-time result. *)

module Event = Telemetry.Event
module Sink = Telemetry.Sink
module Json = Telemetry.Json
module Export = Telemetry.Export
module Report = Telemetry.Report
module Histogram = Telemetry.Histogram
module Gc_stats = Gc_common.Gc_stats
module Vm_stats = Vmsim.Vm_stats
module Metrics = Harness.Metrics
module Registry = Harness.Registry

let check = Alcotest.check

(* ----------------------------------------------------------------- *)
(* Ring buffer                                                        *)

let test_ring_wraparound () =
  let sink = Sink.create ~capacity:8 () in
  let kinds = [| Event.Minor_fault; Event.Major_fault; Event.Eviction |] in
  for i = 0 to 19 do
    Sink.emit sink ~ts_ns:(i * 10) kinds.(i mod 3) i 0
  done;
  check Alcotest.int "total" 20 (Sink.total sink);
  check Alcotest.int "length" 8 (Sink.length sink);
  check Alcotest.int "dropped" 12 (Sink.dropped sink);
  (* the newest 8 events survive, oldest-first *)
  let retained = Sink.to_list sink in
  check (Alcotest.list Alcotest.int) "newest retained, in order"
    [ 120; 130; 140; 150; 160; 170; 180; 190 ]
    (List.map (fun e -> e.Event.ts_ns) retained);
  (* per-kind counters stay exact across the wrap: kinds cycle 0,1,2 so
     kind 0 was emitted for i = 0,3,...,18 — 7 times *)
  check Alcotest.int "minor-fault count" 7 (Sink.count sink Event.Minor_fault);
  check Alcotest.int "major-fault count" 7 (Sink.count sink Event.Major_fault);
  check Alcotest.int "eviction count" 6 (Sink.count sink Event.Eviction);
  Sink.clear sink;
  check Alcotest.int "clear resets total" 0 (Sink.total sink);
  check Alcotest.int "clear resets counts" 0 (Sink.count sink Event.Eviction)

let test_codes_roundtrip () =
  (* kind codes are dense and distinct (they index the sink's per-kind
     counter array) *)
  let codes = List.map Event.kind_code Event.all_kinds in
  check Alcotest.int "kind_count" Event.kind_count (List.length codes);
  check Alcotest.bool "codes dense" true
    (List.sort_uniq compare codes = List.init Event.kind_count Fun.id);
  List.iter
    (fun p ->
      check Alcotest.bool (Event.phase_name p) true
        (Event.phase_of_code (Event.phase_code p) = p))
    Event.all_phases

(* ----------------------------------------------------------------- *)
(* Chrome trace JSON                                                  *)

let test_chrome_golden () =
  let sink = Sink.create ~capacity:16 () in
  Sink.emit sink ~ts_ns:1000 Event.Phase_begin (Event.phase_code Event.Minor) 1;
  Sink.emit sink ~ts_ns:3000 Event.Major_fault 42 1;
  Sink.emit sink ~ts_ns:5000 Event.Phase_end (Event.phase_code Event.Minor) 1;
  let expected =
    "{\"traceEvents\":[{\"name\":\"minor\",\"cat\":\"gc\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1},{\"name\":\"major-fault\",\"cat\":\"vm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":3,\"pid\":1,\"tid\":1,\"args\":{\"page\":42}},{\"name\":\"minor\",\"cat\":\"gc\",\"ph\":\"E\",\"ts\":5,\"pid\":1,\"tid\":1}],\"displayTimeUnit\":\"ms\",\"otherData\":{\"emitted\":3,\"dropped\":0}}"
  in
  check Alcotest.string "golden" expected
    (Json.to_string (Export.chrome_json sink))

let test_chrome_closes_open_spans () =
  let sink = Sink.create ~capacity:16 () in
  Sink.emit sink ~ts_ns:100 Event.Phase_begin (Event.phase_code Event.Full) 2;
  Sink.emit sink ~ts_ns:900 Event.Eviction 7 2;
  (* no Phase_end: the exporter must synthesise one so B/E stay balanced *)
  match Export.chrome_json sink with
  | Json.Obj fields ->
      let events =
        match List.assoc "traceEvents" fields with
        | Json.List l -> l
        | _ -> Alcotest.fail "traceEvents not a list"
      in
      check Alcotest.int "begin + instant + synthetic end" 3
        (List.length events);
      let phs =
        List.filter_map
          (fun e -> Option.bind (Json.member "ph" e) Json.str_opt)
          events
      in
      check Alcotest.bool "has E" true (List.mem "E" phs)
  | _ -> Alcotest.fail "not an object"

let test_json_parser () =
  (* roundtrip of a real trace document through our own parser *)
  let sink = Sink.create ~capacity:16 () in
  Sink.emit sink ~ts_ns:500 Event.Phase_begin (Event.phase_code Event.Compacting) 3;
  Sink.emit sink ~ts_ns:1500 Event.Phase_end (Event.phase_code Event.Compacting) 3;
  Sink.emit sink ~ts_ns:1600 Event.Gauge_resident 12 4;
  let doc =
    Export.chrome_json ~metadata:[ ("outcome", Json.Str "ok") ] sink
  in
  let s = Json.to_string doc in
  (match Json.of_string_opt s with
  | None -> Alcotest.fail "emitted JSON does not parse"
  | Some parsed ->
      check Alcotest.bool "roundtrip equal" true (parsed = doc);
      check (Alcotest.option Alcotest.string) "metadata survives" (Some "ok")
        (Option.bind
           (Option.bind (Json.member "otherData" parsed)
              (Json.member "outcome"))
           Json.str_opt));
  (* malformed inputs are rejected, not crashed on *)
  List.iter
    (fun bad ->
      check Alcotest.bool ("rejects " ^ bad) true
        (Json.of_string_opt bad = None))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "{}trailing"; "\"unterminated" ]

(* ----------------------------------------------------------------- *)
(* Histogram and report                                               *)

let test_histogram () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 100; 1_000; 1_000_000 ];
  check Alcotest.int "count" 3 (Histogram.count h);
  check Alcotest.int "total" 1_001_100 (Histogram.total_ns h);
  check Alcotest.int "max" 1_000_000 (Histogram.max_ns h);
  check Alcotest.bool "mean" true
    (Float.abs (Histogram.mean_ns h -. 333_700.0) < 1.0);
  check Alcotest.bool "percentile monotone" true
    (Histogram.percentile_ns h 0.99 >= Histogram.percentile_ns h 0.5)

let test_report_phases () =
  let sink = Sink.create ~capacity:64 () in
  let span phase t0 t1 =
    Sink.emit sink ~ts_ns:t0 Event.Phase_begin (Event.phase_code phase) 1;
    Sink.emit sink ~ts_ns:t1 Event.Phase_end (Event.phase_code phase) 1
  in
  span Event.Minor 0 1_000;
  span Event.Minor 5_000 7_000;
  span Event.Compacting 10_000 14_000;
  let stats = Report.phases sink in
  let find p = List.find (fun s -> s.Report.phase = p) stats in
  check Alcotest.int "minor spans" 2 (find Event.Minor).Report.count;
  check Alcotest.int "minor total" 3_000 (find Event.Minor).Report.total_ns;
  check Alcotest.int "compacting max" 4_000
    (find Event.Compacting).Report.max_ns;
  check Alcotest.bool "observed collection phases" true
    (Report.observed_collection_phases sink
    = [ Event.Minor; Event.Compacting ])

(* ----------------------------------------------------------------- *)
(* Stats snapshots                                                    *)

let test_gc_stats_snapshot () =
  let clock = Vmsim.Clock.create () in
  let stats = Gc_stats.create () in
  let pause kind ns =
    Gc_stats.time_pause stats clock kind (fun () ->
        Vmsim.Clock.advance clock ns)
  in
  Gc_stats.record_alloc stats ~bytes:64;
  pause Gc_stats.Minor 1_000;
  let s1 = Gc_stats.snapshot stats in
  Gc_stats.record_alloc stats ~bytes:100;
  pause Gc_stats.Full 5_000;
  Gc_stats.note_failsafe stats;
  let s2 = Gc_stats.snapshot stats in
  (* snapshots are immutable views *)
  check Alcotest.int "s1 minor" 1 s1.Gc_stats.Snapshot.minor;
  check Alcotest.int "s1 full" 0 s1.Gc_stats.Snapshot.full;
  let d = Gc_stats.diff s1 s2 in
  check Alcotest.int "diff minor" 0 d.Gc_stats.Snapshot.minor;
  check Alcotest.int "diff full" 1 d.Gc_stats.Snapshot.full;
  check Alcotest.int "diff gc ns" 5_000 d.Gc_stats.Snapshot.total_gc_ns;
  check Alcotest.int "diff alloc" 100 d.Gc_stats.Snapshot.allocated_bytes;
  check Alcotest.int "diff failsafes" 1 d.Gc_stats.Snapshot.failsafes;
  (* the pause suffix: only the full pause happened in between *)
  check Alcotest.int "diff pauses" 1 (List.length d.Gc_stats.Snapshot.pauses);
  (match d.Gc_stats.Snapshot.pauses with
  | [ p ] ->
      check Alcotest.bool "pause kind" true (p.Gc_stats.kind = Gc_stats.Full);
      check Alcotest.int "pause duration" 5_000 p.Gc_stats.duration_ns
  | _ -> Alcotest.fail "expected one pause");
  check Alcotest.bool "snapshot avg pause" true
    (Float.abs (Gc_stats.Snapshot.avg_pause_ms s2 -. 0.003) < 1e-9)

let test_vm_stats_snapshot () =
  let vs = Vm_stats.create () in
  vs.Vm_stats.major_faults <- 3;
  vs.Vm_stats.evictions <- 2;
  let s1 = Vm_stats.snapshot vs in
  vs.Vm_stats.major_faults <- 10;
  vs.Vm_stats.discards <- 4;
  let s2 = Vm_stats.snapshot vs in
  check Alcotest.int "s1 immutable" 3 s1.Vm_stats.Snapshot.major_faults;
  let d = Vm_stats.diff s1 s2 in
  check Alcotest.int "diff major" 7 d.Vm_stats.Snapshot.major_faults;
  check Alcotest.int "diff evictions" 0 d.Vm_stats.Snapshot.evictions;
  check Alcotest.int "diff discards" 4 d.Vm_stats.Snapshot.discards

(* ----------------------------------------------------------------- *)
(* Typed registry                                                     *)

let test_registry_info () =
  check Alcotest.int "all covers both lists"
    (List.length Registry.names + List.length Registry.ablation_names)
    (List.length Registry.all);
  (match Registry.find "BC" with
  | Some i ->
      check Alcotest.string "family" "BC" i.Registry.family;
      check Alcotest.bool "canonical" true (i.Registry.variant = None);
      check Alcotest.bool "not ablation" false i.Registry.ablation;
      check Alcotest.bool "documented" true (String.length i.Registry.doc > 0)
  | None -> Alcotest.fail "BC not registered");
  (match Registry.find "BC-fixed" with
  | Some i ->
      check Alcotest.string "variant family" "BC" i.Registry.family;
      check (Alcotest.option Alcotest.string) "variant" (Some "fixed")
        i.Registry.variant
  | None -> Alcotest.fail "BC-fixed not registered");
  check Alcotest.bool "unknown absent" true (Registry.find "NoSuchGC" = None);
  (* the derived lists keep the documented shape and order *)
  check (Alcotest.list Alcotest.string) "names derivation"
    [ "BC"; "BC-resize"; "BC-fixed"; "GenMS"; "GenMS-fixed"; "GenMS-coop";
      "GenCopy"; "GenCopy-fixed"; "CopyMS"; "MarkSweep"; "SemiSpace" ]
    Registry.names;
  check Alcotest.bool "ablations flagged" true
    (List.for_all
       (fun n ->
         match Registry.find n with
         | Some i -> i.Registry.ablation
         | None -> false)
       Registry.ablation_names);
  (* every entry's stored config agrees with the legacy accessor *)
  List.iter
    (fun (i : Registry.info) ->
      check Alcotest.bool ("config " ^ i.Registry.name) true
        (i.Registry.config ~heap_bytes:1_048_576
        = Registry.config_for ~name:i.Registry.name ~heap_bytes:1_048_576))
    Registry.all

(* ----------------------------------------------------------------- *)
(* Metrics: degraded label and the one serialisation path             *)

let mk_metrics ?(failsafes = 0) ?faults () =
  {
    Metrics.collector = "BC";
    workload = "wl";
    heap_bytes = 1024 * 1024;
    elapsed_ns = 2_000_000;
    gc_ns = 500_000;
    minor = 3;
    full = 1;
    compacting = 2;
    failsafes;
    avg_pause_ms = 0.25;
    p50_pause_ms = 0.2;
    p95_pause_ms = 0.4;
    max_pause_ms = 0.5;
    major_faults = 7;
    gc_major_faults = 1;
    evictions = 4;
    discards = 5;
    relinquished = 6;
    footprint_pages = 300;
    resident_peak_pages = 280;
    allocated_bytes = 4_000_000;
    pauses = [ (0, 100); (200, 300) ];
    faults;
    serving = None;
    control = None;
  }

let test_outcome_label () =
  check Alcotest.string "ok" "ok"
    (Metrics.outcome_label (Metrics.Completed (mk_metrics ())));
  check Alcotest.string "failsafe degrades" "degraded"
    (Metrics.outcome_label (Metrics.Completed (mk_metrics ~failsafes:2 ())));
  let injected =
    {
      Faults.Fault_plan.dropped_eviction = 1;
      dropped_resident = 0;
      delayed = 0;
      duplicated = 0;
      reordered_flushes = 0;
      swap_write_errors = 0;
      swap_read_errors = 0;
      swap_full_rejections = 0;
      spikes_applied = 0;
    }
  in
  check Alcotest.string "faults degrade" "degraded"
    (Metrics.outcome_label (Metrics.Completed (mk_metrics ~faults:injected ())));
  let clean = { injected with Faults.Fault_plan.dropped_eviction = 0 } in
  check Alcotest.string "armed but uninjected plan stays ok" "ok"
    (Metrics.outcome_label (Metrics.Completed (mk_metrics ~faults:clean ())));
  check Alcotest.string "thrashed" "thrashed"
    (Metrics.outcome_label (Metrics.Thrashed "x"))

let test_metrics_to_json () =
  let m = mk_metrics ~failsafes:1 () in
  let s = Json.to_string (Metrics.to_json m) in
  match Json.of_string_opt s with
  | None -> Alcotest.fail "metrics JSON does not parse"
  | Some j ->
      let str k = Option.bind (Json.member k j) Json.str_opt in
      let num k = Option.bind (Json.member k j) Json.num_opt in
      check (Alcotest.option Alcotest.string) "collector" (Some "BC")
        (str "collector");
      check (Alcotest.option (Alcotest.float 0.0)) "failsafes" (Some 1.0)
        (num "failsafes");
      check (Alcotest.option (Alcotest.float 0.0)) "elapsed" (Some 2e6)
        (num "elapsed_ns");
      check Alcotest.bool "null faults" true
        (Json.member "faults" j = Some Json.Null);
      check Alcotest.int "pauses" 2
        (match Option.bind (Json.member "pauses" j) Json.to_list_opt with
        | Some l -> List.length l
        | None -> -1)

(* ----------------------------------------------------------------- *)
(* Zero overhead: tracing must not change virtual-time results        *)

let scaled name volume =
  match Workload.Catalog.find_opt name with
  | Some { Workload.Catalog.params = Workload.Catalog.Batch_spec s; _ } ->
      Workload.Spec.scale_volume s volume
  | Some _ | None -> invalid_arg ("not a batch workload: " ^ name)

let run_once ?trace ~collector ~spec ~heap_kb ?frames ?pin () =
  let pressure =
    match pin with
    | None -> Workload.Pressure.None_
    | Some pin_pages ->
        Workload.Pressure.Steady { after_progress = 0.1; pin_pages }
  in
  let opt v f = match v with None -> Fun.id | Some x -> f x in
  Harness.Run.exec
    (Harness.Run.Plan.make ~collector ~spec ~heap_bytes:(heap_kb * 1024)
    |> opt frames Harness.Run.Plan.with_frames
    |> Harness.Run.Plan.with_pressure pressure
    |> opt trace Harness.Run.Plan.with_trace)

let test_traced_bit_identical () =
  let spec = scaled "_201_compress" 0.05 in
  let sink = Sink.create () in
  let plain = run_once ~collector:"BC" ~spec ~heap_kb:1024 ~frames:400
      ~pin:200 () in
  let traced = run_once ~trace:sink ~collector:"BC" ~spec ~heap_kb:1024
      ~frames:400 ~pin:200 () in
  match (plain, traced) with
  | Metrics.Completed a, Metrics.Completed b ->
      check Alcotest.bool "metrics bit-identical with tracing on" true (a = b);
      check Alcotest.bool "sink saw the run" true (Sink.total sink > 0)
  | _ -> Alcotest.fail "runs did not complete"

(* Golden lines captured from the seed (pre-telemetry) build: the traced-
   off stack must keep producing them byte for byte. *)
let test_seed_golden () =
  let golden =
    [
      ( "GenMS", scaled "_201_compress" 0.05, 1024,
        "GenMS/_201_compress heap=1024KB: 0.004s (gc 0.002s) pauses \
         avg=0.46ms p50=0.49ms p95=0.94ms max=0.94ms gc=[4 minor, 0 full, 0 \
         compact] faults=0 (gc 0) evict=0 discard=0 relinq=0" );
      ( "BC", scaled "_202_jess" 0.02, 2048,
        "BC/_202_jess heap=2048KB: 0.003s (gc 0.000s) pauses avg=0.00ms \
         p50=0.00ms p95=0.00ms max=0.00ms gc=[0 minor, 0 full, 0 compact] \
         faults=0 (gc 0) evict=0 discard=0 relinq=0" );
    ]
  in
  List.iter
    (fun (collector, spec, heap_kb, expected) ->
      match run_once ~collector ~spec ~heap_kb () with
      | Metrics.Completed m ->
          check Alcotest.string (collector ^ " seed line") expected
            (Format.asprintf "%a" Metrics.pp m)
      | _ -> Alcotest.fail (collector ^ ": did not complete"))
    golden

let () =
  Alcotest.run "telemetry"
    [
      ( "sink",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "code roundtrips" `Quick test_codes_roundtrip;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
          Alcotest.test_case "closes open spans" `Quick
            test_chrome_closes_open_spans;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
      ( "report",
        [
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "phase pairing" `Quick test_report_phases;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "gc stats" `Quick test_gc_stats_snapshot;
          Alcotest.test_case "vm stats" `Quick test_vm_stats_snapshot;
        ] );
      ( "registry",
        [ Alcotest.test_case "typed info" `Quick test_registry_info ] );
      ( "metrics",
        [
          Alcotest.test_case "outcome label" `Quick test_outcome_label;
          Alcotest.test_case "to_json" `Quick test_metrics_to_json;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "traced run identical" `Quick
            test_traced_bit_identical;
          Alcotest.test_case "seed golden lines" `Quick test_seed_golden;
        ] );
    ]

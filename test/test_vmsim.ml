module Vmm = Vmsim.Vmm
module Lru = Vmsim.Lru
module Clock = Vmsim.Clock
module Process = Vmsim.Process
module Vm_stats = Vmsim.Vm_stats

let check = Alcotest.check

(* ----------------------------------------------------------------- *)
(* Lru                                                                *)

let test_lru_push_remove () =
  let l = Lru.create () in
  Lru.push_active_head l 1;
  Lru.push_active_head l 2;
  check (Alcotest.option Alcotest.int) "active tail is first pushed" (Some 1)
    (Lru.active_tail l);
  check Alcotest.int "active size" 2 (Lru.active_size l);
  Lru.remove l 1;
  check (Alcotest.option Alcotest.int) "tail after remove" (Some 2)
    (Lru.active_tail l);
  Lru.remove l 2;
  check (Alcotest.option Alcotest.int) "empty" None (Lru.active_tail l)

let test_lru_inactive_order () =
  let l = Lru.create () in
  Lru.push_inactive_head l 1;
  Lru.push_inactive_head l 2;
  (* reclaim happens at the tail: 1 went in first, sits at tail *)
  check (Alcotest.option Alcotest.int) "fifo victim" (Some 1)
    (Lru.inactive_tail l);
  Lru.push_inactive_tail l 3;
  check (Alcotest.option Alcotest.int) "tail insert is next victim" (Some 3)
    (Lru.inactive_tail l)

let test_lru_membership () =
  let l = Lru.create () in
  Lru.push_active_head l 7;
  check Alcotest.bool "active member" true (Lru.membership l 7 = Some Lru.Active);
  Lru.remove l 7;
  Lru.push_inactive_head l 7;
  check Alcotest.bool "inactive member" true
    (Lru.membership l 7 = Some Lru.Inactive);
  check Alcotest.bool "non member" true (Lru.membership l 8 = None)

let test_lru_double_insert_rejected () =
  let l = Lru.create () in
  Lru.push_active_head l 1;
  Alcotest.check_raises "double insert"
    (Invalid_argument "Lru: page already on a list") (fun () ->
      Lru.push_inactive_head l 1)

let test_lru_iterate () =
  let l = Lru.create () in
  List.iter (Lru.push_inactive_head l) [ 1; 2; 3 ];
  let order = ref [] in
  Lru.iter_inactive_from_tail l (fun p -> order := p :: !order);
  check (Alcotest.list Alcotest.int) "tail-to-head" [ 3; 2; 1 ] !order

let test_lru_remove_if_present () =
  let l = Lru.create () in
  check Alcotest.bool "absent page" false (Lru.remove_if_present l 3);
  Lru.push_active_head l 3;
  check Alcotest.bool "active member removed" true (Lru.remove_if_present l 3);
  check Alcotest.bool "removed is gone" false (Lru.remove_if_present l 3);
  check Alcotest.int "lists empty" 0 (Lru.active_size l + Lru.inactive_size l);
  Lru.push_inactive_head l 4;
  check Alcotest.bool "inactive member removed" true
    (Lru.remove_if_present l 4);
  check Alcotest.bool "membership cleared" true (Lru.membership l 4 = None);
  (* beyond the grown arrays: trivially absent, must not grow or raise *)
  check Alcotest.bool "way out of range" false (Lru.remove_if_present l 100_000)

(* The link arrays are chunked: pages with giant numbers must list and
   unlist without the lists ever allocating dense tables. *)
let test_lru_giant_pages () =
  let l = Lru.create () in
  let giant = (1 lsl 30) + 5 in
  Lru.push_active_head l giant;
  Lru.push_inactive_head l 3;
  Lru.push_inactive_head l (giant + 100_000);
  check Alcotest.bool "giant active member" true
    (Lru.membership l giant = Some Lru.Active);
  check (Alcotest.option Alcotest.int) "giant inactive ordering" (Some 3)
    (Lru.inactive_tail l);
  Lru.remove l giant;
  check Alcotest.bool "giant removed" true (Lru.membership l giant = None);
  check Alcotest.bool "untouched giant region absent" false
    (Lru.remove_if_present l (giant + 200_000))

(* ----------------------------------------------------------------- *)
(* Page_flags                                                         *)

module Page_flags = Vmsim.Page_flags

let test_page_flags_roundtrip () =
  let b = Page_flags.create 4 in
  List.iter
    (fun bit ->
      check Alcotest.bool "initially clear" false (Page_flags.get b 2 bit);
      Page_flags.set b 2 bit;
      check Alcotest.bool "set" true (Page_flags.get b 2 bit);
      check Alcotest.int "neighbour untouched" 0 (Page_flags.byte b 1);
      Page_flags.clear b 2 bit;
      check Alcotest.bool "cleared" false (Page_flags.get b 2 bit);
      Page_flags.put b 2 bit true;
      check Alcotest.bool "put true" true (Page_flags.get b 2 bit);
      Page_flags.put b 2 bit false;
      check Alcotest.bool "put false" false (Page_flags.get b 2 bit))
    Page_flags.all;
  (* bits are independent: from all-set, dropping one keeps the rest *)
  List.iter (fun bit -> Page_flags.set b 0 bit) Page_flags.all;
  let full = List.fold_left ( lor ) 0 Page_flags.all in
  check Alcotest.int "packed byte" full (Page_flags.byte b 0);
  List.iter
    (fun bit ->
      Page_flags.clear b 0 bit;
      check Alcotest.int "others survive" (full land lnot bit)
        (Page_flags.byte b 0);
      Page_flags.set b 0 bit)
    Page_flags.all

let test_page_flags_layout () =
  check Alcotest.int "six flags" 6 (List.length Page_flags.all);
  check Alcotest.int "distinct bits" 6
    (List.length (List.sort_uniq compare Page_flags.all));
  List.iter
    (fun bit ->
      check Alcotest.bool "single bit" true (bit > 0 && bit land (bit - 1) = 0))
    Page_flags.all;
  (* the VMM touch fast path hard-codes these three *)
  check Alcotest.int "dirty" 1 Page_flags.dirty;
  check Alcotest.int "referenced" 2 Page_flags.referenced;
  check Alcotest.int "protected" 4 Page_flags.protected_

let test_page_flags_grow () =
  let b = Page_flags.create 2 in
  Page_flags.set b 1 Page_flags.pinned;
  Page_flags.set b 1 Page_flags.in_swap;
  let b = Page_flags.grow b 8 in
  check Alcotest.int "grown length" 8 (Page_flags.length b);
  check Alcotest.int "contents preserved"
    (Page_flags.pinned lor Page_flags.in_swap)
    (Page_flags.byte b 1);
  check Alcotest.int "new pages clear" 0 (Page_flags.byte b 7)

(* ----------------------------------------------------------------- *)
(* Vmm basics                                                         *)

let machine ?(frames = 64) ?(batch = 2) () =
  let clock = Clock.create () in
  let vmm = Vmm.create ~reclaim_batch:batch ~clock ~frames () in
  let proc = Vmm.create_process vmm ~name:"p" in
  (clock, vmm, proc)

let test_first_touch_minor_fault () =
  let clock, vmm, proc = machine () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:4;
  check Alcotest.bool "untouched not resident" false (Vmm.is_resident vmm 0);
  let t0 = Clock.now clock in
  Vmm.touch vmm 0;
  check Alcotest.bool "resident after touch" true (Vmm.is_resident vmm 0);
  check Alcotest.int "one minor fault" 1
    (Vmm.stats vmm).Vm_stats.minor_faults;
  check Alcotest.bool "minor fault charged" true (Clock.now clock > t0);
  Vmm.touch vmm 0;
  check Alcotest.int "second touch free" 1
    (Vmm.stats vmm).Vm_stats.minor_faults

let test_unmapped_touch_rejected () =
  let _, vmm, _ = machine () in
  Alcotest.check_raises "unmapped" (Invalid_argument "Vmm: page 9 is unmapped")
    (fun () -> Vmm.touch vmm 9)

let test_eviction_and_major_fault () =
  let clock, vmm, proc = machine ~frames:8 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:32;
  for p = 0 to 31 do
    Vmm.touch vmm ~write:true p
  done;
  (* only 8 frames: earlier pages must have been evicted *)
  check Alcotest.bool "capacity respected" true (Vmm.resident_count vmm <= 8);
  check Alcotest.bool "evictions happened" true
    ((Vmm.stats vmm).Vm_stats.evictions > 0);
  let swapped = ref [] in
  for p = 0 to 31 do
    if Vmm.is_swapped vmm p then swapped := p :: !swapped
  done;
  check Alcotest.bool "some pages swapped" true (!swapped <> []);
  let victim = List.hd !swapped in
  let t0 = Clock.now clock in
  Vmm.touch vmm victim;
  check Alcotest.bool "major fault charged disk latency" true
    (Clock.now clock - t0 >= (Vmm.costs vmm).Vmsim.Costs.major_fault_ns);
  check Alcotest.bool "major fault counted" true
    ((Vmm.stats vmm).Vm_stats.major_faults > 0)

let test_second_chance () =
  let _, vmm, proc = machine ~frames:4 ~batch:1 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:8;
  for p = 0 to 3 do
    Vmm.touch vmm ~write:true p
  done;
  (* first demand: every reference bit is set, so the clock sweep
     degenerates to FIFO and evicts the oldest page *)
  Vmm.touch vmm 4;
  check Alcotest.bool "oldest evicted first" true (Vmm.is_swapped vmm 0);
  (* reference bits are now clear; re-referencing page 1 protects it *)
  Vmm.touch vmm 1;
  Vmm.touch vmm 5;
  check Alcotest.bool "referenced page got its second chance" true
    (Vmm.is_resident vmm 1);
  check Alcotest.bool "unreferenced page evicted instead" true
    (Vmm.is_swapped vmm 2)

let test_notice_delivered_to_registered () =
  let _, vmm, proc = machine ~frames:4 () in
  let noticed = ref [] in
  Process.register proc
    {
      Process.on_eviction_notice = (fun p -> noticed := p :: !noticed);
      on_resident = (fun _ -> ());
      on_protection_fault = (fun _ -> ());
    };
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  check Alcotest.bool "notices delivered" true (!noticed <> []);
  check Alcotest.bool "stats count notices" true
    ((Vmm.stats vmm).Vm_stats.eviction_notices > 0)

let test_unregistered_gets_no_notice () =
  let _, vmm, proc = machine ~frames:4 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  check Alcotest.int "no notices" 0 (Vmm.stats vmm).Vm_stats.eviction_notices

let test_veto_by_touch () =
  let _, vmm, proc = machine ~frames:4 () in
  let protected_page = 0 in
  Process.register proc
    {
      Process.on_eviction_notice =
        (fun p -> if p = protected_page then Vmm.touch vmm p);
      on_resident = (fun _ -> ());
      on_protection_fault = (fun _ -> ());
    };
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  check Alcotest.bool "vetoed page stays resident" true
    (Vmm.is_resident vmm protected_page)

let test_relinquish_skips_notice () =
  let _, vmm, proc = machine ~frames:16 () in
  let noticed = ref 0 in
  Process.register proc
    {
      Process.on_eviction_notice = (fun _ -> incr noticed);
      on_resident = (fun _ -> ());
      on_protection_fault = (fun _ -> ());
    };
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  Vmm.vm_relinquish vmm [ 0; 1 ];
  check Alcotest.int "relinquished counted" 2
    (Vmm.stats vmm).Vm_stats.relinquished;
  (* demanding frames evicts the surrendered pages without notices *)
  Vmm.map_range vmm proc ~first_page:100 ~npages:2;
  Vmm.touch vmm 100;
  Vmm.touch vmm 101;
  check Alcotest.bool "surrendered page evicted" true (Vmm.is_swapped vmm 0);
  check Alcotest.int "no notice for surrendered" 0 !noticed

let test_relinquish_cancelled_by_touch () =
  let _, vmm, proc = machine ~frames:8 ~batch:1 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:10;
  for p = 0 to 7 do
    Vmm.touch vmm ~write:true p
  done;
  (* age the list so the other pages' reference bits are clear *)
  Vmm.touch vmm 8;
  (* surrender page 1, then the mutator races in and touches it *)
  Vmm.vm_relinquish vmm [ 1 ];
  Vmm.touch vmm 1;
  Vmm.touch vmm 9;
  check Alcotest.bool "touched page survived surrender" true
    (Vmm.is_resident vmm 1);
  check Alcotest.bool "a cold page was evicted instead" true
    (Vmm.is_swapped vmm 2)

let test_madvise_dontneed () =
  let _, vmm, proc = machine () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:2;
  Vmm.touch vmm ~write:true 0;
  let resident_before = Vmm.resident_count vmm in
  Vmm.madvise_dontneed vmm 0;
  check Alcotest.int "frame freed" (resident_before - 1)
    (Vmm.resident_count vmm);
  check Alcotest.int "discard counted" 1 (Vmm.stats vmm).Vm_stats.discards;
  (* next touch is a cheap zero-fill, not a disk read *)
  Vmm.touch vmm 0;
  check Alcotest.int "no major fault" 0 (Vmm.stats vmm).Vm_stats.major_faults

let test_mprotect_upcall () =
  let _, vmm, proc = machine () in
  let faulted = ref [] in
  Process.register proc
    {
      Process.on_eviction_notice = (fun _ -> ());
      on_resident = (fun _ -> ());
      on_protection_fault =
        (fun p ->
          faulted := p :: !faulted;
          Vmm.mprotect vmm p ~protect:false);
    };
  Vmm.map_range vmm proc ~first_page:0 ~npages:1;
  Vmm.touch vmm 0;
  Vmm.mprotect vmm 0 ~protect:true;
  check Alcotest.bool "protected" true (Vmm.is_protected vmm 0);
  Vmm.touch vmm 0;
  check (Alcotest.list Alcotest.int) "upcall fired" [ 0 ] !faulted;
  check Alcotest.bool "handler unprotected" false (Vmm.is_protected vmm 0);
  check Alcotest.int "protection fault counted" 1
    (Vmm.stats vmm).Vm_stats.protection_faults

let test_on_resident_fires_on_reload () =
  let _, vmm, proc = machine ~frames:4 () in
  let reloaded = ref [] in
  Process.register proc
    {
      Process.on_eviction_notice = (fun _ -> ());
      on_resident = (fun p -> reloaded := p :: !reloaded);
      on_protection_fault = (fun _ -> ());
    };
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  let victim = ref (-1) in
  for p = 0 to 15 do
    if !victim < 0 && Vmm.is_swapped vmm p then victim := p
  done;
  Vmm.touch vmm !victim;
  check Alcotest.bool "on_resident fired" true (List.mem !victim !reloaded)

let test_mlock_pins () =
  let _, vmm, proc = machine ~frames:4 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  Vmm.mlock vmm 0;
  check Alcotest.int "pinned" 1 (Vmm.pinned_count vmm);
  for p = 1 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  check Alcotest.bool "pinned page never evicted" true (Vmm.is_resident vmm 0);
  Vmm.munlock vmm 0;
  check Alcotest.int "unpinned" 0 (Vmm.pinned_count vmm)

let test_thrashing_when_all_pinned () =
  let _, vmm, proc = machine ~frames:4 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:8;
  for p = 0 to 3 do
    Vmm.mlock vmm p
  done;
  check Alcotest.bool "thrashing raised" true
    (match Vmm.touch vmm 4 with
    | () -> false
    | exception Vmm.Thrashing _ -> true)

let test_desperation_overrides_veto () =
  let _, vmm, proc = machine ~frames:4 () in
  (* an owner that vetoes everything *)
  Process.register proc
    {
      Process.on_eviction_notice = (fun p -> Vmm.touch vmm p);
      on_resident = (fun _ -> ());
      on_protection_fault = (fun _ -> ());
    };
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  check Alcotest.bool "forced evictions" true
    ((Vmm.stats vmm).Vm_stats.forced_evictions > 0);
  check Alcotest.bool "capacity held" true (Vmm.resident_count vmm <= 4)

let test_set_capacity_shrink () =
  let _, vmm, proc = machine ~frames:16 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  Vmm.set_capacity vmm 4;
  check Alcotest.bool "shrunk" true (Vmm.resident_count vmm <= 4)

let test_unmap_releases () =
  let _, vmm, proc = machine () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:4;
  Vmm.touch vmm 0;
  Vmm.unmap_range vmm ~first_page:0 ~npages:4;
  check Alcotest.int "frames released" 0 (Vmm.resident_count vmm);
  check Alcotest.bool "owner gone" true (Vmm.owner vmm 0 = None)

let test_unmap_swapped_drops_copy () =
  let _, vmm, proc = machine ~frames:4 ~batch:1 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:8;
  for p = 0 to 7 do
    Vmm.touch vmm ~write:true p
  done;
  let victim = ref (-1) in
  for p = 7 downto 0 do
    if Vmm.is_swapped vmm p then victim := p
  done;
  check Alcotest.bool "victim has a swap copy" true
    (Vmsim.Swap.has_copy (Vmm.swap vmm) !victim);
  Vmm.unmap_range vmm ~first_page:!victim ~npages:1;
  check Alcotest.bool "copy dropped at unmap" false
    (Vmsim.Swap.has_copy (Vmm.swap vmm) !victim)

let test_count_resident_owned () =
  let _, vmm, proc = machine () in
  let other = Vmm.create_process vmm ~name:"other" in
  Vmm.map_range vmm proc ~first_page:0 ~npages:2;
  Vmm.map_range vmm other ~first_page:10 ~npages:2;
  Vmm.touch vmm 0;
  Vmm.touch vmm 10;
  check Alcotest.int "per-process count" 1 (Vmm.count_resident_owned vmm proc)

(* [count_resident_owned] is a gauge read, not a scan; drive eviction,
   reload, discard and unmap churn and check the gauges stay exact (the
   call itself also cross-checks against a full-table scan in debug
   builds). *)
let test_resident_gauge_tracks_churn () =
  let _, vmm, proc = machine ~frames:4 () in
  let other = Vmm.create_process vmm ~name:"other" in
  Vmm.map_range vmm proc ~first_page:0 ~npages:6;
  Vmm.map_range vmm other ~first_page:10 ~npages:2;
  let agree msg =
    check Alcotest.int msg (Vmm.resident_count vmm)
      (Vmm.count_resident_owned vmm proc + Vmm.count_resident_owned vmm other);
    check Alcotest.int (msg ^ " (raw gauge)")
      (Vmm.count_resident_owned vmm proc)
      (Process.stats proc).Vm_stats.resident_pages
  in
  (* 7 touches into 4 frames: evictions and reloads on proc's pages *)
  for p = 0 to 5 do
    Vmm.touch vmm p
  done;
  Vmm.touch vmm 10;
  agree "after eviction churn";
  Vmm.touch vmm 0;
  agree "after reload";
  (match
     List.find_opt (fun p -> Vmm.is_resident vmm p) [ 0; 1; 2; 3; 4; 5 ]
   with
  | Some p -> Vmm.madvise_dontneed vmm p
  | None -> ());
  agree "after discard";
  Vmm.unmap_range vmm ~first_page:0 ~npages:6;
  check Alcotest.int "unmap zeroes the gauge" 0
    (Vmm.count_resident_owned vmm proc);
  agree "after unmap"

let test_coldest_pages () =
  let _, vmm, proc = machine ~frames:32 () in
  let other = Vmm.create_process vmm ~name:"other" in
  Vmm.map_range vmm proc ~first_page:0 ~npages:4;
  Vmm.map_range vmm other ~first_page:10 ~npages:2;
  List.iter (fun p -> Vmm.touch vmm p) [ 0; 1; 10; 2; 11; 3 ];
  let cold = Vmm.coldest_pages vmm ~owner:proc ~n:3 in
  check Alcotest.int "n respected" 3 (List.length cold);
  check Alcotest.bool "only owner's pages" true
    (List.for_all (fun p -> p < 4) cold);
  (* coldest = least recently faulted in: page 0 first *)
  check Alcotest.int "coldest first" 0 (List.hd cold)

(* ----------------------------------------------------------------- *)
(* Swap device                                                        *)

let test_swap_accounting () =
  let s = Vmsim.Swap.create () in
  Vmsim.Swap.write s 1;
  Vmsim.Swap.write s 2;
  check Alcotest.int "occupancy" 2 (Vmsim.Swap.occupancy_pages s);
  Vmsim.Swap.read s 1;
  check Alcotest.int "reads" 1 (Vmsim.Swap.reads s);
  Vmsim.Swap.drop s 1;
  check Alcotest.int "occupancy after drop" 1 (Vmsim.Swap.occupancy_pages s);
  check Alcotest.int "high water" 2 (Vmsim.Swap.high_water_pages s);
  check Alcotest.bool "has copy" true (Vmsim.Swap.has_copy s 2);
  Alcotest.check_raises "read without copy"
    (Invalid_argument "Swap.read: page 1 has no swap copy") (fun () ->
      Vmsim.Swap.read s 1)

let test_swap_capacity () =
  let s = Vmsim.Swap.create ~capacity_pages:1 () in
  Vmsim.Swap.write s 1;
  check Alcotest.bool "full raises" true
    (match Vmsim.Swap.write s 2 with
    | () -> false
    | exception Vmsim.Swap.Full -> true);
  (* rewriting an existing copy is fine at capacity *)
  Vmsim.Swap.write s 1

let test_swap_tracks_evictions () =
  let _, vmm, proc = machine ~frames:8 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:32;
  for p = 0 to 31 do
    Vmm.touch vmm ~write:true p
  done;
  let swap = Vmm.swap vmm in
  check Alcotest.bool "swap occupied" true
    (Vmsim.Swap.occupancy_pages swap > 0);
  check Alcotest.int "occupancy matches swapped pages"
    (let n = ref 0 in
     for p = 0 to 31 do
       if Vmm.is_swapped vmm p then incr n
     done;
     !n)
    (Vmsim.Swap.occupancy_pages swap);
  (* reloading reads the copy but keeps it *)
  let victim = ref (-1) in
  for p = 31 downto 0 do
    if Vmm.is_swapped vmm p then victim := p
  done;
  Vmm.touch vmm !victim;
  check Alcotest.bool "reads counted" true (Vmsim.Swap.reads swap > 0)

(* ----------------------------------------------------------------- *)
(* Cooperation syscalls under failure                                  *)

let test_relinquish_already_evicted () =
  let _, vmm, proc = machine ~frames:4 ~batch:1 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:8;
  for p = 0 to 7 do
    Vmm.touch vmm ~write:true p
  done;
  let swapped = ref [] in
  for p = 0 to 7 do
    if Vmm.is_swapped vmm p then swapped := p :: !swapped
  done;
  check Alcotest.bool "some pages already evicted" true (!swapped <> []);
  (* surrendering pages the kernel already evicted (a stale footprint
     view after lost notices) must be a harmless no-op *)
  Vmm.vm_relinquish vmm !swapped;
  check Alcotest.int "nothing newly relinquished" 0
    (Vmm.stats vmm).Vm_stats.relinquished;
  List.iter
    (fun p -> check Alcotest.bool "still swapped" true (Vmm.is_swapped vmm p))
    !swapped;
  (* same for unmapped and never-touched pages *)
  Vmm.vm_relinquish vmm [ 200; 201 ]

let test_madvise_races_reclaim () =
  let _, vmm, proc = machine ~frames:4 ~batch:1 () in
  (* an owner that answers every eviction notice by discarding the
     page — madvise_dontneed issued from inside the reclaim pass *)
  Process.register proc
    {
      Process.on_eviction_notice = (fun p -> Vmm.madvise_dontneed vmm p);
      on_resident = (fun _ -> ());
      on_protection_fault = (fun _ -> ());
    };
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  check Alcotest.bool "discards recorded" true
    ((Vmm.stats vmm).Vm_stats.discards > 0);
  check Alcotest.bool "capacity held" true (Vmm.resident_count vmm <= 4);
  (* discarded pages need no swap copy: re-touching is a zero fill *)
  check Alcotest.int "no major faults" 0 (Vmm.stats vmm).Vm_stats.major_faults

let test_mlock_when_all_frames_pinned () =
  let _, vmm, proc = machine ~frames:4 () in
  Vmm.map_range vmm proc ~first_page:0 ~npages:8;
  for p = 0 to 3 do
    Vmm.mlock vmm p
  done;
  check Alcotest.int "all frames pinned" 4 (Vmm.pinned_count vmm);
  (* locking a fifth page needs a frame no reclaim pass can free *)
  check Alcotest.bool "mlock past capacity raises Thrashing" true
    (match Vmm.mlock vmm 4 with
    | () -> false
    | exception Vmm.Thrashing _ -> true)

let test_swap_full_during_eviction () =
  let clock = Clock.create () in
  (* swap holds 2 pages; 4 frames; 16 dirty pages force evictions that
     soon find the device full. The run may still complete (stalled
     evictions retried later) or legitimately thrash once neither memory
     nor swap can hold the working set — but Swap.Full must never escape
     the paging path *)
  let vmm =
    Vmm.create ~reclaim_batch:1 ~swap_capacity_pages:2 ~clock ~frames:4 ()
  in
  let proc = Vmm.create_process vmm ~name:"p" in
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  (match
     for p = 0 to 15 do
       Vmm.touch vmm ~write:true p
     done
   with
  | () -> ()
  | exception Vmm.Thrashing _ -> ()
  | exception Vmsim.Swap.Full -> Alcotest.fail "Swap.Full escaped eviction");
  check Alcotest.bool "stalls recorded" true
    ((Vmm.stats vmm).Vm_stats.swap_stalls > 0);
  check Alcotest.bool "swap capacity respected" true
    (Vmsim.Swap.occupancy_pages (Vmm.swap vmm) <= 2);
  check Alcotest.bool "capacity still held" true (Vmm.resident_count vmm <= 4)

(* ----------------------------------------------------------------- *)
(* Sparse page table, giant address spaces and batched spans           *)

module Page_table = Vmm.Page_table

let test_page_table_api () =
  let pt = Page_table.create () in
  let giant = (1 lsl 30) + 3 in
  check Alcotest.int "fresh table: no chunks" 0
    (Page_table.materialized_chunks pt);
  (* reads are total anywhere in the address space, without allocating *)
  check Alcotest.int "unmapped state" 0 (Page_table.state pt giant);
  check Alcotest.int "owner 0 = never mapped" 0 (Page_table.owner_pid pt giant);
  check Alcotest.bool "sentinel covers untouched pages" true
    (Page_table.chunk_of pt giant == Page_table.sentinel);
  check Alcotest.bool "negative pages answer sentinel" true
    (Page_table.chunk_of pt (-5) == Page_table.sentinel);
  check Alcotest.int "reads materialised nothing" 0
    (Page_table.materialized_chunks pt);
  Page_table.map pt ~page:giant ~pid:7;
  check Alcotest.bool "mapped page materialised" true
    (Page_table.is_materialized pt giant);
  check Alcotest.int "exactly one chunk" 1 (Page_table.materialized_chunks pt);
  check Alcotest.int "owner recorded" 7 (Page_table.owner_pid pt giant);
  check Alcotest.bool "chunk-mate still never mapped" true
    (Page_table.owner_pid pt (giant + 1) = 0);
  let visited = ref [] in
  Page_table.iter_chunks pt (fun ~chunk_index _ ->
      visited := chunk_index :: !visited);
  check
    (Alcotest.list Alcotest.int)
    "iter_chunks visits only the materialised chunk"
    [ giant lsr Page_table.chunk_shift ]
    !visited

let test_giant_sparse_touch () =
  let _, vmm, proc = machine ~frames:64 () in
  (* straddle the 2^30 boundary: two chunks at most *)
  let base = (1 lsl 30) - 8 in
  Vmm.map_range vmm proc ~first_page:base ~npages:32;
  for p = base to base + 31 do
    Vmm.touch vmm ~write:true p
  done;
  check Alcotest.int "all resident" 32 (Vmm.resident_count vmm);
  check Alcotest.bool "resident at 2^30" true (Vmm.is_resident vmm (1 lsl 30));
  check Alcotest.bool "metadata stays O(touched)" true
    (Page_table.materialized_chunks (Vmm.page_table vmm) <= 2);
  Alcotest.check_raises "far-away page unmapped"
    (Invalid_argument "Vmm: page 4096 is unmapped") (fun () ->
      Vmm.touch vmm 4096);
  Alcotest.check_raises "negative page unmapped"
    (Invalid_argument "Vmm: page -3 is unmapped") (fun () ->
      Vmm.touch vmm (-3))

(* The pid side table is chunked too (256 pids per chunk): processes far
   beyond the first chunk must still resolve as owners. *)
let test_many_processes () =
  let _, vmm, _ = machine ~frames:2048 () in
  let procs =
    List.init 600 (fun i ->
        Vmm.create_process vmm ~name:(Printf.sprintf "p%d" i))
  in
  List.iteri
    (fun i proc ->
      Vmm.map_range vmm proc ~first_page:(i * 4) ~npages:2;
      Vmm.touch vmm (i * 4))
    procs;
  List.iteri
    (fun i proc ->
      match Vmm.owner vmm (i * 4) with
      | Some p ->
          if Process.pid p <> Process.pid proc then
            Alcotest.failf "page %d owned by pid %d, expected %d" (i * 4)
              (Process.pid p) (Process.pid proc)
      | None -> Alcotest.failf "page %d has no owner" (i * 4))
    procs

(* [touch_span] is specified as exactly equivalent to the per-page loop
   with a clock advance before each touch. Drive two identical machines
   through the same mixed schedule — resident runs, a protected page,
   cold pages that fault under tight frames — once through [touch_span]
   and once through the literal loop, and require every observable to
   agree: clock, global counters, and the full per-page
   resident/dirty/swapped map. *)
let span_schedule base =
  [
    (base, 16, false, 7);
    (base + 8, 24, true, 3);
    (base + 16, 32, false, 11);
    (base + 40, 24, true, 5);
    (base, 64, false, 2);
    (base + 62, 2, true, 0);
  ]

let span_fingerprint ~driver =
  let clock = Clock.create () in
  let vmm = Vmm.create ~reclaim_batch:2 ~clock ~frames:24 () in
  let proc = Vmm.create_process vmm ~name:"p" in
  let base = (1 lsl 30) - 16 in
  let npages = 64 in
  Vmm.map_range vmm proc ~first_page:base ~npages;
  for p = base to base + 31 do
    Vmm.touch vmm p
  done;
  Vmm.mprotect vmm (base + 20) ~protect:true;
  List.iter
    (fun (first_page, n, write, cost_ns) ->
      driver vmm ~write ~cost_ns ~first_page n)
    (span_schedule base);
  let b = Buffer.create 256 in
  let s = Vmm.stats vmm in
  Printf.bprintf b "clock=%d resident=%d minor=%d major=%d evict=%d prot=%d\n"
    (Clock.now clock) (Vmm.resident_count vmm) s.Vm_stats.minor_faults
    s.Vm_stats.major_faults s.Vm_stats.evictions s.Vm_stats.protection_faults;
  for p = base to base + npages - 1 do
    Printf.bprintf b "%c%c%c"
      (if Vmm.is_resident vmm p then 'r' else '-')
      (if Vmm.is_dirty vmm p then 'd' else '-')
      (if Vmm.is_swapped vmm p then 's' else '-')
  done;
  Buffer.contents b

let span_driver vmm ~write ~cost_ns ~first_page n =
  Vmm.touch_span vmm ~write ~cost_ns ~first_page n

let loop_driver vmm ~write ~cost_ns ~first_page n =
  for p = first_page to first_page + n - 1 do
    Clock.advance (Vmm.clock vmm) cost_ns;
    Vmm.touch vmm ~write p
  done

let test_touch_span_equivalence () =
  let by_loop = span_fingerprint ~driver:loop_driver in
  let by_span = span_fingerprint ~driver:span_driver in
  check Alcotest.string "span = per-page loop" by_loop by_span;
  (* and with skipping globally disabled, the span takes the literal
     path — all three runs must be bit-identical *)
  Vmm.set_span_skipping false;
  let by_span_off =
    Fun.protect
      ~finally:(fun () -> Vmm.set_span_skipping true)
      (fun () -> span_fingerprint ~driver:span_driver)
  in
  check Alcotest.string "span with skipping off" by_loop by_span_off;
  check Alcotest.bool "skipping restored" true (Vmm.span_skipping_enabled ())

(* Model property: a random touch/madvise/relinquish sequence keeps the
   VMM's resident count within capacity and consistent with page
   states. *)
let prop_vmm_model =
  QCheck.Test.make ~name:"vmm invariants under random operations" ~count:60
    QCheck.(small_list (pair (int_bound 3) (int_bound 31)))
    (fun ops ->
      let _, vmm, proc = machine ~frames:8 () in
      Vmm.map_range vmm proc ~first_page:0 ~npages:32;
      List.iter
        (fun (op, page) ->
          match op with
          | 0 -> Vmm.touch vmm page
          | 1 -> Vmm.touch vmm ~write:true page
          | 2 -> Vmm.madvise_dontneed vmm page
          | _ -> Vmm.vm_relinquish vmm [ page ])
        ops;
      let resident = ref 0 in
      for p = 0 to 31 do
        if Vmm.is_resident vmm p then incr resident
      done;
      !resident = Vmm.resident_count vmm && !resident <= 8)

let () =
  Alcotest.run "vmsim"
    [
      ( "lru",
        [
          Alcotest.test_case "push/remove" `Quick test_lru_push_remove;
          Alcotest.test_case "inactive order" `Quick test_lru_inactive_order;
          Alcotest.test_case "membership" `Quick test_lru_membership;
          Alcotest.test_case "double insert" `Quick test_lru_double_insert_rejected;
          Alcotest.test_case "iterate" `Quick test_lru_iterate;
          Alcotest.test_case "remove if present" `Quick
            test_lru_remove_if_present;
          Alcotest.test_case "giant pages" `Quick test_lru_giant_pages;
        ] );
      ( "page_flags",
        [
          Alcotest.test_case "roundtrip" `Quick test_page_flags_roundtrip;
          Alcotest.test_case "layout" `Quick test_page_flags_layout;
          Alcotest.test_case "grow" `Quick test_page_flags_grow;
        ] );
      ( "faults",
        [
          Alcotest.test_case "first touch minor" `Quick test_first_touch_minor_fault;
          Alcotest.test_case "unmapped rejected" `Quick test_unmapped_touch_rejected;
          Alcotest.test_case "eviction + major" `Quick test_eviction_and_major_fault;
          Alcotest.test_case "second chance" `Quick test_second_chance;
        ] );
      ( "cooperation",
        [
          Alcotest.test_case "notice to registered" `Quick
            test_notice_delivered_to_registered;
          Alcotest.test_case "no notice unregistered" `Quick
            test_unregistered_gets_no_notice;
          Alcotest.test_case "veto by touch" `Quick test_veto_by_touch;
          Alcotest.test_case "relinquish fast path" `Quick
            test_relinquish_skips_notice;
          Alcotest.test_case "relinquish cancelled" `Quick
            test_relinquish_cancelled_by_touch;
          Alcotest.test_case "madvise dontneed" `Quick test_madvise_dontneed;
          Alcotest.test_case "mprotect upcall" `Quick test_mprotect_upcall;
          Alcotest.test_case "on_resident" `Quick test_on_resident_fires_on_reload;
        ] );
      ( "swap",
        [
          Alcotest.test_case "accounting" `Quick test_swap_accounting;
          Alcotest.test_case "capacity" `Quick test_swap_capacity;
          Alcotest.test_case "tracks evictions" `Quick test_swap_tracks_evictions;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "mlock pins" `Quick test_mlock_pins;
          Alcotest.test_case "thrashing" `Quick test_thrashing_when_all_pinned;
          Alcotest.test_case "desperation" `Quick test_desperation_overrides_veto;
          Alcotest.test_case "set_capacity" `Quick test_set_capacity_shrink;
          Alcotest.test_case "unmap" `Quick test_unmap_releases;
          Alcotest.test_case "resident owned" `Quick test_count_resident_owned;
          Alcotest.test_case "resident gauge churn" `Quick
            test_resident_gauge_tracks_churn;
          Alcotest.test_case "coldest pages" `Quick test_coldest_pages;
          Alcotest.test_case "unmap drops swap copy" `Quick
            test_unmap_swapped_drops_copy;
        ] );
      ( "failure modes",
        [
          Alcotest.test_case "relinquish already evicted" `Quick
            test_relinquish_already_evicted;
          Alcotest.test_case "madvise races reclaim" `Quick
            test_madvise_races_reclaim;
          Alcotest.test_case "mlock all pinned" `Quick
            test_mlock_when_all_frames_pinned;
          Alcotest.test_case "swap full during eviction" `Quick
            test_swap_full_during_eviction;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "page table api" `Quick test_page_table_api;
          Alcotest.test_case "giant sparse touch" `Quick
            test_giant_sparse_touch;
          Alcotest.test_case "many processes" `Quick test_many_processes;
          Alcotest.test_case "touch_span equivalence" `Quick
            test_touch_span_equivalence;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_vmm_model ]);
    ]

(* Fault injection: the plan's determinism and the stack's graceful
   degradation under lost notices, swap errors and device-full episodes. *)

module FP = Faults.Fault_plan
module Vmm = Vmsim.Vmm
module Clock = Vmsim.Clock
module Process = Vmsim.Process
module Metrics = Harness.Metrics

let check = Alcotest.check

(* ----------------------------------------------------------------- *)
(* Spec parsing                                                       *)

let test_spec_parse () =
  (match FP.spec_of_string "drop-evict=0.3,swap-full=2,spikes=1" with
  | Ok spec ->
      check (Alcotest.float 1e-9) "drop" 0.3 spec.FP.drop_eviction;
      check Alcotest.int "episodes" 2 spec.FP.swap_full_episodes;
      check Alcotest.int "spikes" 1 spec.FP.spike_count
  | Error msg -> Alcotest.fail msg);
  (match FP.spec_of_string "drop=0.5" with
  | Ok spec -> check (Alcotest.float 1e-9) "drop alias" 0.5 spec.FP.drop_eviction
  | Error msg -> Alcotest.fail msg);
  check Alcotest.bool "none parses" true (FP.spec_of_string "none" = Ok FP.none);
  check Alcotest.bool "empty parses" true (FP.spec_of_string "" = Ok FP.none);
  check Alcotest.bool "unknown key rejected" true
    (Result.is_error (FP.spec_of_string "frobnicate=1"));
  check Alcotest.bool "bad probability rejected" true
    (Result.is_error (FP.spec_of_string "drop-evict=1.5"));
  check Alcotest.bool "missing value rejected" true
    (Result.is_error (FP.spec_of_string "drop-evict"))

let test_spec_roundtrip () =
  let specs =
    [
      FP.none;
      { FP.none with FP.drop_eviction = 0.25; delay_notice = 0.1 };
      {
        FP.none with
        FP.swap_full_episodes = 3;
        swap_full_len = 4;
        swap_write_error = 0.05;
        spike_count = 2;
        spike_pages = 64;
      };
    ]
  in
  List.iter
    (fun spec ->
      let s = FP.spec_to_string spec in
      match FP.spec_of_string s with
      | Ok spec' -> check Alcotest.bool ("roundtrip " ^ s) true (spec = spec')
      | Error msg -> Alcotest.fail msg)
    specs

(* ----------------------------------------------------------------- *)
(* VMM-level injection                                                *)

let faulty_machine ?(frames = 4) plan_spec ~seed =
  let clock = Clock.create () in
  let plan = FP.create ~seed plan_spec in
  let vmm = Vmm.create ~reclaim_batch:1 ~faults:plan ~clock ~frames () in
  let proc = Vmm.create_process vmm ~name:"p" in
  (vmm, proc, plan)

let test_drop_all_eviction_notices () =
  let vmm, proc, plan =
    faulty_machine { FP.none with FP.drop_eviction = 1.0 } ~seed:42
  in
  let noticed = ref 0 in
  Process.register proc
    {
      Process.on_eviction_notice = (fun _ -> incr noticed);
      on_resident = (fun _ -> ());
      on_protection_fault = (fun _ -> ());
    };
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  check Alcotest.int "every notice dropped" 0 !noticed;
  check Alcotest.bool "drops counted" true ((FP.stats plan).FP.dropped_eviction > 0);
  check Alcotest.bool "evictions proceeded anyway" true
    ((Vmm.stats vmm).Vmsim.Vm_stats.evictions > 0)

let test_delayed_notices_flushed () =
  let vmm, proc, plan =
    faulty_machine { FP.none with FP.delay_notice = 1.0 } ~seed:11
  in
  let noticed = ref 0 in
  Process.register proc
    {
      Process.on_eviction_notice = (fun _ -> incr noticed);
      on_resident = (fun _ -> ());
      on_protection_fault = (fun _ -> ());
    };
  Vmm.map_range vmm proc ~first_page:0 ~npages:16;
  for p = 0 to 15 do
    Vmm.touch vmm ~write:true p
  done;
  check Alcotest.bool "delays counted" true ((FP.stats plan).FP.delayed > 0);
  (* late notices were queued, and subsequent touches flushed them *)
  check Alcotest.bool "late notices eventually delivered" true (!noticed > 0)

(* ----------------------------------------------------------------- *)
(* End-to-end degradation                                             *)

let mini_spec =
  {
    (Workload.Benchmarks.pseudojbb) with
    Workload.Spec.total_alloc_bytes = 2_000_000;
    immortal_bytes = 200_000;
    window_bytes = 100_000;
  }

let pressured_setup ?(collector = "BC") ~faults ~fault_seed () =
  let heap_bytes = 1_500_000 in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 256 in
  let pressure =
    Workload.Pressure.Steady { after_progress = 0.2; pin_pages = frames - 150 }
  in
  Harness.Run.Plan.make ~collector ~spec:mini_spec ~heap_bytes
  |> Harness.Run.Plan.with_frames frames
  |> Harness.Run.Plan.with_pressure pressure
  |> Harness.Run.Plan.with_faults ~seed:fault_seed faults
  |> Harness.Run.Plan.with_verify

let degradation_plan =
  {
    FP.none with
    FP.drop_eviction = 0.3;
    drop_resident = 0.1;
    delay_notice = 0.1;
    duplicate_notice = 0.05;
  }

let test_bc_degrades_gracefully () =
  match Harness.Run.exec (pressured_setup ~faults:degradation_plan ~fault_seed:7 ()) with
  | Metrics.Completed m ->
      (* verify:true already ran the heap verifier and BC's own
         invariant check before this outcome was produced *)
      let s =
        match m.Metrics.faults with
        | Some s -> s
        | None -> Alcotest.fail "no fault stats on a faulted run"
      in
      check Alcotest.bool "notices actually dropped" true
        (s.FP.dropped_eviction > 0);
      check Alcotest.bool "collections completed" true
        (m.Metrics.minor + m.Metrics.full + m.Metrics.compacting > 0);
      check Alcotest.string "outcome degraded" "degraded"
        (Metrics.outcome_label (Metrics.Completed m))
  | Metrics.Exhausted msg -> Alcotest.failf "exhausted: %s" msg
  | Metrics.Thrashed msg -> Alcotest.failf "thrashed: %s" msg
  | Metrics.Failed f -> Alcotest.failf "failed: %s" f.Metrics.reason

let test_swap_full_episodes () =
  let faults =
    {
      FP.none with
      FP.swap_full_episodes = 2;
      swap_full_len = 4;
      swap_full_every = 16;
      swap_write_error = 0.02;
    }
  in
  (* GenMS pages heavily under pressure, guaranteeing swap writes for the
     episode script to reject *)
  match
    Harness.Run.exec (pressured_setup ~collector:"GenMS" ~faults ~fault_seed:3 ())
  with
  | Metrics.Completed m ->
      let s = Option.get m.Metrics.faults in
      check Alcotest.bool "device-full rejections" true
        (s.FP.swap_full_rejections >= 1)
  | Metrics.Exhausted msg -> Alcotest.failf "exhausted: %s" msg
  | Metrics.Thrashed msg -> Alcotest.failf "thrashed: %s" msg
  | Metrics.Failed f -> Alcotest.failf "failed: %s" f.Metrics.reason

let test_determinism () =
  let once () =
    match Harness.Run.exec (pressured_setup ~faults:degradation_plan ~fault_seed:21 ()) with
    | Metrics.Completed m -> m
    | Metrics.Exhausted msg | Metrics.Thrashed msg -> Alcotest.fail msg
    | Metrics.Failed f -> Alcotest.fail f.Metrics.reason
  in
  let a = once () and b = once () in
  (* same seed, same plan: the entire fault schedule and therefore the
     final metrics must be bit-identical *)
  check Alcotest.bool "identical metrics" true (a = b);
  check Alcotest.string "identical fault stats"
    (Format.asprintf "%a" FP.pp_stats (Option.get a.Metrics.faults))
    (Format.asprintf "%a" FP.pp_stats (Option.get b.Metrics.faults))

(* Pressure spikes vs the event-skipping clock: a spike whose whole
   [from, until) progress window falls inside one scheduling round — a
   skipped span fast-forwarded progress right over it — must still fire:
   counted in the fault stats, pages pinned for one round, then released.
   The slice here is sized so every round jumps more progress than the
   widest spike window (0.15), so without the machine's jumped-spike
   handling no spike would ever pin a page. *)
let test_spikes_fire_inside_skipped_spans () =
  let spike_plan = { FP.none with FP.spike_count = 3; spike_pages = 64 } in
  let fault_seed = 5 in
  let expected_spikes =
    List.length (FP.spikes (FP.create ~seed:fault_seed spike_plan))
  in
  check Alcotest.bool "seed generates spikes" true (expected_spikes >= 1);
  let sink = Telemetry.Sink.create () in
  let plan =
    Harness.Run.Plan.make ~collector:"BC" ~spec:mini_spec
      ~heap_bytes:1_500_000
    |> Harness.Run.Plan.with_faults ~seed:fault_seed spike_plan
    |> Harness.Run.Plan.with_ops_per_slice 8192
    |> Harness.Run.Plan.with_trace sink
  in
  (match Harness.Run.exec plan with
  | Metrics.Completed m ->
      let s = Option.get m.Metrics.faults in
      check Alcotest.int "every spike fired despite the jumps"
        expected_spikes s.FP.spikes_applied
  | _ -> Alcotest.fail "run did not complete");
  let rounds = Telemetry.Sink.count sink Telemetry.Event.Alloc_slice in
  check Alcotest.bool "rounds jump wider than any spike window" true
    (rounds >= 2 && rounds <= 6);
  (* event order: pins and releases alternate and the running pinned
     total is consistent — each spike rises before it falls *)
  let steps = ref [] in
  Telemetry.Sink.iter sink (fun e ->
      if e.Telemetry.Event.kind = Telemetry.Event.Pressure_step then
        steps := (e.Telemetry.Event.a, e.Telemetry.Event.b) :: !steps);
  let steps = List.rev !steps in
  check Alcotest.bool "spikes pinned pages" true (steps <> []);
  (match steps with
  | (a0, b0) :: _ ->
      check Alcotest.bool "first step is a rise from zero" true
        (b0 > 0 && a0 = b0)
  | [] -> ());
  check Alcotest.bool "a jumped spike recedes after its round" true
    (List.exists (fun (_, b) -> b < 0) steps);
  ignore
    (List.fold_left
       (fun prev (a, b) ->
         check Alcotest.int "pinned total tracks the deltas" (prev + b) a;
         a)
       0 steps)

let test_different_seed_differs () =
  let stats_for seed =
    match Harness.Run.exec (pressured_setup ~faults:degradation_plan ~fault_seed:seed ()) with
    | Metrics.Completed m -> Option.get m.Metrics.faults
    | _ -> Alcotest.fail "run did not complete"
  in
  let a = stats_for 1 and b = stats_for 2 in
  (* not a hard guarantee for any pair of seeds, but these two differ *)
  check Alcotest.bool "schedules differ across seeds" true (a <> b)

let () =
  Alcotest.run "faults"
    [
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
        ] );
      ( "vmm",
        [
          Alcotest.test_case "drop all notices" `Quick
            test_drop_all_eviction_notices;
          Alcotest.test_case "delayed notices flushed" `Quick
            test_delayed_notices_flushed;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "BC survives 30% dropped notices" `Quick
            test_bc_degrades_gracefully;
          Alcotest.test_case "swap-full episodes" `Quick test_swap_full_episodes;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "spikes fire inside skipped spans" `Quick
            test_spikes_fire_inside_skipped_spans;
          Alcotest.test_case "seed sensitivity" `Quick test_different_seed_differs;
        ] );
    ]

module Mini = Test_support.Mini
module Spec = Workload.Spec

let check = Alcotest.check

let test_spec_catalog () =
  check Alcotest.int "nine benchmarks" 9
    (List.length Workload.Catalog.batch_specs);
  check Alcotest.int "scale" 8 Workload.Catalog.scale;
  List.iter
    (fun spec ->
      check Alcotest.bool (spec.Spec.name ^ " volumes positive") true
        (spec.Spec.total_alloc_bytes > 0
        && spec.Spec.immortal_bytes > 0
        && spec.Spec.window_bytes > 0
        && spec.Spec.paper_min_heap_bytes > 0);
      check Alcotest.bool (spec.Spec.name ^ " live below min heap") true
        (Spec.live_estimate_bytes spec < spec.Spec.paper_min_heap_bytes))
    Workload.Catalog.batch_specs

let test_registry () =
  let all = Workload.Catalog.all in
  check Alcotest.int "both families registered" 15 (List.length all);
  check Alcotest.int "six serving workloads" 6
    (List.length Workload.Catalog.serving_specs);
  (* names are unique and find_opt agrees with the list *)
  let names = Workload.Catalog.names () in
  check Alcotest.int "names cover the registry" (List.length all)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun (i : Workload.Catalog.info) ->
      match Workload.Catalog.find_opt i.Workload.Catalog.name with
      | Some found ->
          check Alcotest.string
            (i.Workload.Catalog.name ^ " found")
            i.Workload.Catalog.name found.Workload.Catalog.name;
          check Alcotest.bool
            (i.Workload.Catalog.name ^ " family consistent")
            true
            (found.Workload.Catalog.family
            = Workload.Catalog.family_of_params found.Workload.Catalog.params)
      | None -> Alcotest.failf "%s not found" i.Workload.Catalog.name)
    all

let test_find () =
  (match Workload.Catalog.find_opt "pseudoJBB" with
  | Some i ->
      check Alcotest.string "find" "pseudoJBB" i.Workload.Catalog.name;
      check Alcotest.bool "batch family" true
        (i.Workload.Catalog.family = Workload.Catalog.Batch)
  | None -> Alcotest.fail "pseudoJBB not found");
  (match Workload.Catalog.find_opt "srv_flash" with
  | Some i ->
      check Alcotest.bool "serving family" true
        (i.Workload.Catalog.family = Workload.Catalog.Serving)
  | None -> Alcotest.fail "srv_flash not found");
  check Alcotest.bool "missing is None" true
    (Workload.Catalog.find_opt "nope" = None)

(* The Benchmarks shim is gone; the catalog is now the only enumeration
   and lookup path, so pin the nine Table 1 specs to it: exact names in
   Table 1 order, and each catalog entry physically equal to the named
   Benchmarks value old call sites migrated from. *)
let table1 =
  [
    ("_201_compress", Workload.Benchmarks.compress);
    ("_202_jess", Workload.Benchmarks.jess);
    ("_205_raytrace", Workload.Benchmarks.raytrace);
    ("_209_db", Workload.Benchmarks.db);
    ("_213_javac", Workload.Benchmarks.javac);
    ("_228_jack", Workload.Benchmarks.jack);
    ("ipsixql", Workload.Benchmarks.ipsixql);
    ("jython", Workload.Benchmarks.jython);
    ("pseudoJBB", Workload.Benchmarks.pseudojbb);
  ]

let test_catalog_pins_table1 () =
  check
    Alcotest.(list string)
    "batch specs are the nine, in Table 1 order"
    (List.map fst table1)
    (List.map (fun (s : Spec.t) -> s.Spec.name) Workload.Catalog.batch_specs);
  List.iter
    (fun (name, spec) ->
      check Alcotest.bool (name ^ " batch_specs holds the named value") true
        (List.memq spec Workload.Catalog.batch_specs);
      match Workload.Catalog.find_opt name with
      | Some info -> (
          match info.Workload.Catalog.params with
          | Workload.Catalog.Batch_spec s ->
              check Alcotest.bool (name ^ " find_opt agrees") true (s == spec)
          | Workload.Catalog.Serving_spec _ ->
              Alcotest.fail (name ^ " registered as serving"))
      | None -> Alcotest.fail (name ^ " missing from catalog"))
    table1

let test_scale_volume () =
  let s = Workload.Benchmarks.jess in
  let half = Spec.scale_volume s 0.5 in
  check Alcotest.int "half volume" (s.Spec.total_alloc_bytes / 2)
    half.Spec.total_alloc_bytes;
  check Alcotest.int "live set untouched" s.Spec.immortal_bytes
    half.Spec.immortal_bytes;
  (* volume never shrinks below the start-up allocation *)
  let tiny = Spec.scale_volume s 0.0000001 in
  check Alcotest.bool "floor at immortal" true
    (tiny.Spec.total_alloc_bytes >= s.Spec.immortal_bytes)

let test_mutator_runs_to_volume () =
  let _, c = Mini.collector ~heap_bytes:(1024 * 1024) "GenMS" in
  let spec = Mini.spec () in
  let mutator = Workload.Mutator.create spec c in
  check Alcotest.bool "not finished at start" false
    (Workload.Mutator.finished mutator);
  Mini.drive mutator;
  check Alcotest.bool "finished" true (Workload.Mutator.finished mutator);
  check Alcotest.bool "allocated at least the volume" true
    (Workload.Mutator.allocated_bytes mutator >= spec.Spec.total_alloc_bytes);
  check Alcotest.bool "ops counted" true (Workload.Mutator.ops_done mutator > 0)

let test_mutator_deterministic () =
  let run () =
    let m, c = Mini.collector ~heap_bytes:(1024 * 1024) "BC" in
    let mutator = Workload.Mutator.create (Mini.spec ~seed:7 ()) c in
    Mini.drive mutator;
    (Workload.Mutator.ops_done mutator, Vmsim.Clock.now m.Mini.clock)
  in
  check Alcotest.bool "deterministic" true (run () = run ())

let test_mutator_seed_sensitivity () =
  let run seed =
    let _, c = Mini.collector ~heap_bytes:(1024 * 1024) "GenMS" in
    let mutator = Workload.Mutator.create (Mini.spec ~seed ()) c in
    Mini.drive mutator;
    Workload.Mutator.ops_done mutator
  in
  check Alcotest.bool "different seeds differ" true (run 1 <> run 2)

let test_mutator_survives_tiny_heap_startup () =
  (* regression: collections during Mutator.create must not lose the
     window segments (roots are installed before allocating) *)
  let _, c = Mini.collector ~heap_bytes:(480 * 1024) "GenMS" in
  let spec = { (Mini.spec ~volume:400_000 ()) with Workload.Spec.immortal_bytes = 150_000 } in
  let mutator = Workload.Mutator.create spec c in
  Mini.drive mutator;
  check Alcotest.bool "completed" true (Workload.Mutator.finished mutator)

let test_step_slices () =
  let _, c = Mini.collector "GenMS" in
  let mutator = Workload.Mutator.create (Mini.spec ()) c in
  let before = Workload.Mutator.ops_done mutator in
  ignore (Workload.Mutator.step mutator ~ops:10);
  check Alcotest.int "exactly a slice" (before + 10)
    (Workload.Mutator.ops_done mutator)

let test_pressure_schedules () =
  let module P = Workload.Pressure in
  check Alcotest.int "none" 0
    (P.due_pages P.None_ ~now_ns:0 ~start_ns:0 ~progress:1.0);
  let steady = P.Steady { after_progress = 0.5; pin_pages = 100 } in
  check Alcotest.int "steady before" 0
    (P.due_pages steady ~now_ns:0 ~start_ns:0 ~progress:0.4);
  check Alcotest.int "steady after" 100
    (P.due_pages steady ~now_ns:0 ~start_ns:0 ~progress:0.6);
  let ramp =
    P.Ramp
      {
        after_progress = 0.0;
        initial_pages = 10;
        pages_per_step = 5;
        step_ns = 1000;
        max_pages = 30;
      }
  in
  check Alcotest.int "ramp initial" 10
    (P.due_pages ramp ~now_ns:0 ~start_ns:0 ~progress:0.5);
  check Alcotest.int "ramp mid" 20
    (P.due_pages ramp ~now_ns:2000 ~start_ns:0 ~progress:0.5);
  check Alcotest.int "ramp capped" 30
    (P.due_pages ramp ~now_ns:100_000 ~start_ns:0 ~progress:0.5)

let test_signalmem_pins () =
  let m = Mini.machine ~frames:256 () in
  let sm =
    Workload.Signalmem.create m.Mini.vmm
      (Heapsim.Heap.address_space m.Mini.heap)
  in
  Workload.Signalmem.pin_pages sm 50;
  check Alcotest.int "pinned" 50 (Workload.Signalmem.pinned_pages sm);
  check Alcotest.int "vmm agrees" 50 (Vmsim.Vmm.pinned_count m.Mini.vmm);
  Workload.Signalmem.unpin_all sm;
  check Alcotest.int "unpinned" 0 (Vmsim.Vmm.pinned_count m.Mini.vmm)

let test_spec_file_roundtrip () =
  let spec = { (Mini.spec ()) with Workload.Spec.name = "roundtrip" } in
  let path = Filename.temp_file "bcgc" ".spec" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Spec.to_file spec path;
      let loaded = Workload.Spec.of_file path in
      check Alcotest.string "name" spec.Workload.Spec.name
        loaded.Workload.Spec.name;
      check Alcotest.int "alloc" spec.Workload.Spec.total_alloc_bytes
        loaded.Workload.Spec.total_alloc_bytes;
      check Alcotest.int "immortal" spec.Workload.Spec.immortal_bytes
        loaded.Workload.Spec.immortal_bytes;
      check (Alcotest.float 1e-6) "long_frac" spec.Workload.Spec.long_frac
        loaded.Workload.Spec.long_frac)

let test_spec_file_defaults_and_comments () =
  let path = Filename.temp_file "bcgc" ".spec" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# a comment\nname = partial\nmean_size = 72\n";
      close_out oc;
      let spec = Workload.Spec.of_file path in
      check Alcotest.string "name" "partial" spec.Workload.Spec.name;
      check Alcotest.int "mean size" 72 spec.Workload.Spec.mean_size;
      check Alcotest.bool "defaults filled" true
        (spec.Workload.Spec.total_alloc_bytes > 0))

let test_spec_file_rejects_unknown_key () =
  let path = Filename.temp_file "bcgc" ".spec" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "bogus_key = 1\n";
      close_out oc;
      check Alcotest.bool "unknown key rejected" true
        (match Workload.Spec.of_file path with
        | (_ : Workload.Spec.t) -> false
        | exception Failure _ -> true))

(* ----------------------------------------------------------------- *)
(* Traces                                                             *)

let record_trace ?(volume = 150_000) () =
  let _, c = Mini.collector ~heap_bytes:(2 * 1024 * 1024) "MarkSweep" in
  let trace = Workload.Trace.create () in
  let mutator = Workload.Mutator.create ~trace (Mini.spec ~volume ()) c in
  Mini.drive mutator;
  (trace, Workload.Mutator.allocated_bytes mutator)

let test_trace_roundtrip () =
  let trace, _ = record_trace () in
  let path = Filename.temp_file "bcgc" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Trace.save trace path;
      let loaded = Workload.Trace.load path in
      check Alcotest.int "length preserved" (Workload.Trace.length trace)
        (Workload.Trace.length loaded);
      for i = 0 to Workload.Trace.length trace - 1 do
        assert (Workload.Trace.nth trace i = Workload.Trace.nth loaded i)
      done)

let test_trace_replay_equivalent () =
  let trace, recorded_bytes = record_trace () in
  (* replay against a different collector: same allocation volume, same
     surviving object count, and a sound heap *)
  let m, c = Mini.collector ~heap_bytes:(1024 * 1024) "BC" in
  Workload.Trace.replay trace c;
  check Alcotest.bool "allocation volume preserved" true
    (Gc_common.Gc_stats.allocated_bytes c.Gc_common.Collector.stats
    >= recorded_bytes);
  Test_support.Oracle.check m.Mini.heap;
  c.Gc_common.Collector.check_invariants ()

let test_trace_replay_all_collectors_agree () =
  let trace, _ = record_trace ~volume:80_000 () in
  let live name =
    let m, c = Mini.collector ~heap_bytes:(1024 * 1024) name in
    Workload.Trace.replay trace c;
    (* after one forced full collection, the live set is exactly the
       reachable set, identical for every collector *)
    c.Gc_common.Collector.collect ();
    c.Gc_common.Collector.collect ();
    Test_support.Oracle.reachable_count m.Mini.heap
  in
  let reference = live "MarkSweep" in
  List.iter
    (fun name ->
      check Alcotest.int (name ^ " same reachable set") reference (live name))
    [ "BC"; "GenMS"; "GenCopy"; "CopyMS"; "SemiSpace" ]

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "bcgc" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "A 12 0 1\nnot an event\n";
      close_out oc;
      check Alcotest.bool "malformed rejected" true
        (match Workload.Trace.load path with
        | (_ : Workload.Trace.t) -> false
        | exception Failure _ -> true))

(* random *valid* traces (writes/accesses only reference born objects,
   roots tracked) replay soundly on any collector *)
let prop_random_trace_replays =
  QCheck.Test.make ~name:"random valid traces replay soundly" ~count:25
    QCheck.(pair (int_range 0 5) (small_list (pair (int_bound 4) (pair small_nat small_nat))))
    (fun (collector_idx, ops) ->
      let trace = Workload.Trace.create () in
      let born = ref 0 in
      let pick x = if !born = 0 then None else Some (x mod !born) in
      (* always start with one rooted object *)
      Workload.Trace.record trace (Workload.Trace.Alloc { size = 16; nrefs = 2; array = false });
      incr born;
      Workload.Trace.record trace (Workload.Trace.Root 0);
      List.iter
        (fun (op, (a, b)) ->
          match op with
          | 0 ->
              Workload.Trace.record trace
                (Workload.Trace.Alloc
                   { size = 8 + (a mod 512); nrefs = b mod 4; array = a mod 2 = 0 });
              incr born
          | 1 -> (
              match (pick a, pick b) with
              | Some src, Some target ->
                  Workload.Trace.record trace
                    (Workload.Trace.Write { src; field = 0; target })
              | _ -> ())
          | 2 -> (
              match pick a with
              | Some obj -> Workload.Trace.record trace (Workload.Trace.Access obj)
              | None -> ())
          | 3 -> (
              match pick a with
              | Some obj -> Workload.Trace.record trace (Workload.Trace.Root obj)
              | None -> ())
          | _ -> (
              match pick a with
              | Some obj when obj > 0 ->
                  (* never unroot object 0: keep one anchor *)
                  Workload.Trace.record trace (Workload.Trace.Unroot obj)
              | _ -> ()))
        ops;
      let name =
        List.nth [ "BC"; "GenMS"; "GenCopy"; "CopyMS"; "MarkSweep"; "SemiSpace" ]
          collector_idx
      in
      let m, c = Mini.collector ~heap_bytes:(1024 * 1024) name in
      (* writes may hit arbitrary fields; cap at field 0 which every
         nrefs>=1 object has -- use nrefs>=1 objects only for writes *)
      (try Workload.Trace.replay trace c
       with Invalid_argument _ -> () (* field out of range: acceptable reject *));
      Test_support.Oracle.check m.Mini.heap;
      true)

let prop_mutator_any_seed_sound =
  QCheck.Test.make ~name:"mutator sound for any seed" ~count:15
    QCheck.(int_bound 100_000)
    (fun seed ->
      let m, c = Mini.collector ~heap_bytes:(1024 * 1024) "GenCopy" in
      let mutator = Workload.Mutator.create (Mini.spec ~volume:200_000 ~seed ()) c in
      Mini.drive mutator;
      Test_support.Oracle.check m.Mini.heap;
      true)

let () =
  Alcotest.run "workload"
    [
      ( "specs",
        [
          Alcotest.test_case "catalog" `Quick test_spec_catalog;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "catalog pins Table 1" `Quick
            test_catalog_pins_table1;
          Alcotest.test_case "scale_volume" `Quick test_scale_volume;
        ] );
      ( "mutator",
        [
          Alcotest.test_case "runs to volume" `Quick test_mutator_runs_to_volume;
          Alcotest.test_case "deterministic" `Quick test_mutator_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_mutator_seed_sensitivity;
          Alcotest.test_case "tiny heap startup" `Quick
            test_mutator_survives_tiny_heap_startup;
          Alcotest.test_case "step slices" `Quick test_step_slices;
        ] );
      ( "pressure",
        [
          Alcotest.test_case "schedules" `Quick test_pressure_schedules;
          Alcotest.test_case "signalmem" `Quick test_signalmem_pins;
        ] );
      ( "spec files",
        [
          Alcotest.test_case "roundtrip" `Quick test_spec_file_roundtrip;
          Alcotest.test_case "defaults+comments" `Quick
            test_spec_file_defaults_and_comments;
          Alcotest.test_case "unknown key" `Quick
            test_spec_file_rejects_unknown_key;
        ] );
      ( "traces",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "replay equivalent" `Quick
            test_trace_replay_equivalent;
          Alcotest.test_case "collectors agree" `Quick
            test_trace_replay_all_collectors_agree;
          Alcotest.test_case "malformed rejected" `Quick
            test_trace_load_rejects_garbage;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_mutator_any_seed_sound;
          QCheck_alcotest.to_alcotest prop_random_trace_replays;
        ] );
    ]
